type tv = F | T | X

let tv_pp ppf = function
  | F -> Format.pp_print_char ppf '0'
  | T -> Format.pp_print_char ppf '1'
  | X -> Format.pp_print_char ppf 'X'

let tv_equal (a : tv) b = a = b

let index_env order values =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.replace tbl s values.(i)) order;
  fun s -> Hashtbl.find tbl s

let step c ~state ~inputs =
  let latch_order = Circuit.latches c in
  let input_order = Circuit.inputs c in
  if Array.length state <> List.length latch_order then
    invalid_arg "Sim.step: state size";
  if Array.length inputs <> List.length input_order then
    invalid_arg "Sim.step: inputs size";
  let latch_env = index_env latch_order state in
  let input_env = index_env input_order inputs in
  let source s =
    match Circuit.driver c s with
    | Latch _ -> latch_env s
    | Input -> input_env s
    | Undriven | Gate _ -> assert false
  in
  let values = Eval.comb_eval c ~source in
  let outs = Array.of_list (List.map (fun o -> values.(o)) (Circuit.outputs c)) in
  let next =
    Array.of_list
      (List.mapi
         (fun i l ->
           let data, enable = Circuit.latch_info c l in
           match enable with
           | None -> values.(data)
           | Some e -> if values.(e) then values.(data) else state.(i))
         latch_order)
  in
  (outs, next)

let run c ~init ~inputs =
  let state = ref init in
  List.map
    (fun inp ->
      let outs, next = step c ~state:!state ~inputs:inp in
      state := next;
      outs)
    inputs

(* ---- conservative 3-valued simulation ---- *)

let tv_not = function F -> T | T -> F | X -> X

let tv_and a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | _ -> X

let tv_or a b = tv_not (tv_and (tv_not a) (tv_not b))

let tv_xor a b =
  match (a, b) with
  | X, _ | _, X -> X
  | T, T | F, F -> F
  | _ -> T

let gate_eval_3v (fn : Circuit.gate_fn) (vs : tv array) =
  match fn with
  | Const b -> if b then T else F
  | Buf -> vs.(0)
  | Not -> tv_not vs.(0)
  | And -> Array.fold_left tv_and T vs
  | Or -> Array.fold_left tv_or F vs
  | Nand -> tv_not (Array.fold_left tv_and T vs)
  | Nor -> tv_not (Array.fold_left tv_or F vs)
  | Xor -> Array.fold_left tv_xor F vs
  | Xnor -> tv_not (Array.fold_left tv_xor F vs)
  | Mux -> (
      match vs.(0) with
      | T -> vs.(1)
      | F -> vs.(2)
      | X -> if tv_equal vs.(1) vs.(2) && not (tv_equal vs.(1) X) then vs.(1) else X)

let comb_eval_3v c ~source =
  let n = Circuit.signal_count c in
  let values = Array.make n X in
  for s = 0 to n - 1 do
    match Circuit.driver c s with
    | Input | Latch _ -> values.(s) <- source s
    | Undriven | Gate _ -> ()
  done;
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) ->
          values.(s) <- gate_eval_3v fn (Array.map (fun f -> values.(f)) fs)
      | Undriven | Input | Latch _ -> assert false)
    (Circuit.comb_topo c);
  values

let run_3v c ~inputs =
  let latch_order = Circuit.latches c in
  let input_order = Circuit.inputs c in
  let state = ref (Array.make (List.length latch_order) X) in
  List.map
    (fun inp ->
      let latch_env = index_env latch_order !state in
      let input_env =
        index_env input_order (Array.map (fun b -> if b then T else F) inp)
      in
      let source s =
        match Circuit.driver c s with
        | Latch _ -> latch_env s
        | Input -> input_env s
        | Undriven | Gate _ -> assert false
      in
      let values = comb_eval_3v c ~source in
      let outs = Array.of_list (List.map (fun o -> values.(o)) (Circuit.outputs c)) in
      state :=
        Array.of_list
          (List.mapi
             (fun i l ->
               let data, enable = Circuit.latch_info c l in
               match enable with
               | None -> values.(data)
               | Some e -> (
                   match values.(e) with
                   | T -> values.(data)
                   | F -> !state.(i)
                   | X ->
                       if tv_equal values.(data) !state.(i) then values.(data) else X))
             latch_order);
      outs)
    inputs

(* ---- exact 3-valued semantics ---- *)

let run_exact ?(max_latches = 16) c ~inputs =
  let nl = Circuit.latch_count c in
  if nl > max_latches then
    invalid_arg
      (Printf.sprintf "Sim.run_exact: %d latches exceeds limit %d" nl max_latches);
  let n_out = List.length (Circuit.outputs c) in
  let n_cyc = List.length inputs in
  let agg : tv array array =
    Array.init n_cyc (fun _ -> Array.make n_out X)
  in
  let first = ref true in
  for powerup = 0 to (1 lsl nl) - 1 do
    let init = Array.init nl (fun i -> powerup land (1 lsl i) <> 0) in
    let trace = run c ~init ~inputs in
    List.iteri
      (fun t outs ->
        Array.iteri
          (fun i b ->
            let v = if b then T else F in
            if !first then agg.(t).(i) <- v
            else if not (tv_equal agg.(t).(i) v) then agg.(t).(i) <- X)
          outs)
      trace;
    first := false
  done;
  Array.to_list agg

let equivalent_exact ?max_latches c1 c2 ~input_seqs =
  let rec go = function
    | [] -> None
    | seq :: rest ->
        let t1 = run_exact ?max_latches c1 ~inputs:seq in
        let t2 = run_exact ?max_latches c2 ~inputs:seq in
        let same =
          List.length t1 = List.length t2
          && List.for_all2 (fun a b -> Array.for_all2 tv_equal a b) t1 t2
        in
        if same then go rest else Some (seq, t1, t2)
  in
  go input_seqs

let all_input_seqs c ~depth =
  let ni = List.length (Circuit.inputs c) in
  let vectors =
    List.init (1 lsl ni) (fun m -> Array.init ni (fun i -> m land (1 lsl i) <> 0))
  in
  let rec seqs d = if d = 0 then [ [] ] else
    let shorter = seqs (d - 1) in
    List.concat_map (fun v -> List.map (fun s -> v :: s) shorter) vectors
  in
  seqs depth

let random_input_seq st c ~cycles =
  let ni = List.length (Circuit.inputs c) in
  List.init cycles (fun _ -> Array.init ni (fun _ -> Random.State.bool st))
