type counterexample = (string * bool) list

type verdict = Equivalent | Inequivalent of counterexample

type engine = Bdd_engine | Sat_engine | Sweep_engine

let last_sat_calls = ref 0

let stats_last_sat_calls () = !last_sat_calls

let require_comb c =
  if Circuit.latch_count c > 0 then
    invalid_arg
      (Printf.sprintf "Cec: circuit %s is not combinational" (Circuit.name c))

(* United input universe: name -> index, in order of first appearance. *)
let united_inputs c1 c2 =
  let names = ref [] in
  let seen = Hashtbl.create 64 in
  let collect c =
    List.iter
      (fun s ->
        let n = Circuit.signal_name c s in
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.replace seen n (List.length !names);
          names := n :: !names
        end)
      (Circuit.inputs c)
  in
  collect c1;
  collect c2;
  (List.rev !names, seen)

(* ---------- BDD engine ---------- *)

let bdd_outputs man index c =
  let source s = Bdd.var man (Hashtbl.find index (Circuit.signal_name c s)) in
  let n = Circuit.signal_count c in
  let node = Array.make n (Bdd.zero man) in
  for s = 0 to n - 1 do
    match Circuit.driver c s with
    | Input -> node.(s) <- source s
    | Undriven | Gate _ | Latch _ -> ()
  done;
  List.iter
    (fun s ->
      match Circuit.driver c s with
      | Gate (fn, fs) ->
          let ins = Array.map (fun f -> node.(f)) fs in
          let v =
            match fn with
            | Const b -> if b then Bdd.one man else Bdd.zero man
            | Buf -> ins.(0)
            | Not -> Bdd.not_ man ins.(0)
            | And -> Array.fold_left (Bdd.and_ man) (Bdd.one man) ins
            | Nand -> Bdd.not_ man (Array.fold_left (Bdd.and_ man) (Bdd.one man) ins)
            | Or -> Array.fold_left (Bdd.or_ man) (Bdd.zero man) ins
            | Nor -> Bdd.not_ man (Array.fold_left (Bdd.or_ man) (Bdd.zero man) ins)
            | Xor -> Array.fold_left (Bdd.xor_ man) (Bdd.zero man) ins
            | Xnor -> Bdd.not_ man (Array.fold_left (Bdd.xor_ man) (Bdd.zero man) ins)
            | Mux -> Bdd.ite man ins.(0) ins.(1) ins.(2)
          in
          node.(s) <- v
      | Undriven | Input | Latch _ -> ())
    (Circuit.comb_topo c);
  List.map (fun o -> node.(o)) (Circuit.outputs c)

let check_bdd c1 c2 =
  let names, index = united_inputs c1 c2 in
  let man = Bdd.man () in
  (* allocate variables in order *)
  List.iteri (fun i _ -> ignore (Bdd.var man i)) names;
  let o1 = bdd_outputs man index c1 in
  let o2 = bdd_outputs man index c2 in
  let rec cmp o1 o2 =
    match (o1, o2) with
    | [], [] -> Equivalent
    | f :: r1, g :: r2 ->
        if Bdd.equal f g then cmp r1 r2
        else begin
          let diff = Bdd.xor_ man f g in
          match Bdd.any_sat man diff with
          | None -> assert false
          | Some assignment ->
              let name_arr = Array.of_list names in
              Inequivalent
                (List.map (fun (v, b) -> (name_arr.(v), b)) assignment)
        end
    | _ -> invalid_arg "Cec: output counts differ"
  in
  cmp o1 o2

(* ---------- shared AIG construction ---------- *)

let build_shared_aig c1 c2 =
  let names, index = united_inputs c1 c2 in
  let g = Aig.create () in
  let input_lits = List.map (fun _ -> Aig.input g) names in
  let lit_arr = Array.of_list input_lits in
  let source c s = lit_arr.(Hashtbl.find index (Circuit.signal_name c s)) in
  let env1 = Aig.of_circuit_comb g c1 ~source:(source c1) in
  let env2 = Aig.of_circuit_comb g c2 ~source:(source c2) in
  let outs c (env : Aig.env) =
    List.map (fun o -> env.of_signal.(o)) (Circuit.outputs c)
  in
  (g, names, outs c1 env1, outs c2 env2)

(* Incremental Tseitin encoder over a (possibly growing) AIG. *)
module Encoder = struct
  type t = {
    g : Aig.t;
    solver : Sat.t;
    vars : int Vgraph.Vec.t; (* node -> sat var, 0 = unencoded *)
  }

  let create g = { g; solver = Sat.create (); vars = Vgraph.Vec.create ~dummy:0 () }

  let var_of e n =
    while Vgraph.Vec.length e.vars <= n do
      ignore (Vgraph.Vec.push e.vars 0)
    done;
    Vgraph.Vec.get e.vars n

  let rec encode_node e n =
    let v = var_of e n in
    if v <> 0 then v
    else begin
      let v = Sat.new_var e.solver in
      Vgraph.Vec.set e.vars n v;
      if n = 0 then Sat.add_clause e.solver [ -v ]
      else if not (Aig.is_input_node e.g n) then begin
        let f0, f1 = Aig.fanins e.g n in
        let l0 = encode_lit e f0 and l1 = encode_lit e f1 in
        Sat.add_clause e.solver [ -v; l0 ];
        Sat.add_clause e.solver [ -v; l1 ];
        Sat.add_clause e.solver [ v; -l0; -l1 ]
      end;
      v
    end

  and encode_lit e l =
    let v = encode_node e (Aig.node_of l) in
    if Aig.is_complement l then -v else v
end

let sat_solve_counted solver ?assumptions () =
  incr last_sat_calls;
  Sat.solve ?assumptions solver

(* extract input assignment from a SAT model *)
let model_cex enc g names =
  let n_in = Aig.num_inputs g in
  let cex = ref [] in
  let name_arr = Array.of_list names in
  for i = 0 to n_in - 1 do
    let l = Aig.input_lit g i in
    let node = Aig.node_of l in
    let v = Encoder.var_of enc node in
    if v <> 0 then cex := (name_arr.(i), Sat.value enc.Encoder.solver v) :: !cex
  done;
  List.rev !cex

let check_sat c1 c2 =
  let g, names, o1, o2 = build_shared_aig c1 c2 in
  if List.length o1 <> List.length o2 then invalid_arg "Cec: output counts differ";
  let enc = Encoder.create g in
  (* miter: OR of XORs *)
  let diffs = List.map2 (fun a b -> Aig.xor_ g a b) o1 o2 in
  let miter = Aig.or_list g diffs in
  if miter = Aig.lit_false then Equivalent
  else begin
    let ml = Encoder.encode_lit enc miter in
    match sat_solve_counted enc.Encoder.solver ~assumptions:[ ml ] () with
    | Sat.Unsat -> Equivalent
    | Sat.Sat -> Inequivalent (model_cex enc g names)
  end

(* ---------- sweep engine ---------- *)

let sim_rounds = 4 (* 4 * 64 = 256 random patterns *)

let check_sweep ?(seed = 0xC0FFEE) c1 c2 =
  let g, names, o1, o2 = build_shared_aig c1 c2 in
  if List.length o1 <> List.length o2 then invalid_arg "Cec: output counts differ";
  let st = Random.State.make [| seed |] in
  let n_in = Aig.num_inputs g in
  let n_nodes = Aig.node_count g in
  (* signatures *)
  let sigs = Array.make n_nodes [] in
  for _round = 1 to sim_rounds do
    let words = Array.init n_in (fun _ -> Random.State.int64 st Int64.max_int) in
    let vals = Aig.simulate g words in
    for n = 0 to n_nodes - 1 do
      sigs.(n) <- vals.(n) :: sigs.(n)
    done
  done;
  (* canonical signature: complement so that bit0 of first word is 0 *)
  let canon n =
    match sigs.(n) with
    | [] -> ([], false)
    | w :: _ as ws ->
        if Int64.logand w 1L = 1L then (List.map Int64.lognot ws, true) else (ws, false)
  in
  (* rebuild into g2 merging proven-equivalent nodes *)
  let g2 = Aig.create () in
  let enc = Encoder.create g2 in
  let map = Array.make n_nodes (-1) in
  map.(0) <- Aig.lit_false;
  let classes : (int64 list, int) Hashtbl.t = Hashtbl.create 1024 in
  (* class table: canonical signature -> representative node (original id) *)
  let lit_map l =
    let m = map.(Aig.node_of l) in
    assert (m >= 0);
    if Aig.is_complement l then Aig.neg m else m
  in
  let prove_equal la lb =
    (* equal iff both (la & ~lb) and (~la & lb) unsatisfiable *)
    let a = Encoder.encode_lit enc la and b = Encoder.encode_lit enc lb in
    match sat_solve_counted enc.Encoder.solver ~assumptions:[ a; -b ] () with
    | Sat.Sat -> false
    | Sat.Unsat -> (
        match sat_solve_counted enc.Encoder.solver ~assumptions:[ -a; b ] () with
        | Sat.Sat -> false
        | Sat.Unsat -> true)
  in
  for n = 1 to n_nodes - 1 do
    if Aig.is_input_node g n then begin
      map.(n) <- Aig.input g2;
      (* inputs are never merged, but register their class so that internal
         nodes equivalent to an input can merge into it *)
      let key, phase = canon n in
      if not (Hashtbl.mem classes key) then Hashtbl.replace classes key n
      else ignore phase
    end
    else begin
      let f0, f1 = Aig.fanins g n in
      let l = Aig.and_ g2 (lit_map f0) (lit_map f1) in
      map.(n) <- l;
      if Aig.node_of l <> 0 then begin
        let key, phase = canon n in
        match Hashtbl.find_opt classes key with
        | None -> Hashtbl.replace classes key n
        | Some repr when repr = n -> ()
        | Some repr ->
            let _, rphase = canon repr in
            let rlit = map.(repr) in
            let rlit = if phase <> rphase then Aig.neg rlit else rlit in
            if Aig.node_of rlit <> Aig.node_of l && prove_equal l rlit then
              map.(n) <- rlit
      end
    end
  done;
  (* final miter on g2 *)
  let m1 = List.map lit_map o1 and m2 = List.map lit_map o2 in
  let diffs = List.map2 (fun a b -> Aig.xor_ g2 a b) m1 m2 in
  let miter = Aig.or_list g2 diffs in
  if miter = Aig.lit_false then Equivalent
  else begin
    let ml = Encoder.encode_lit enc miter in
    match sat_solve_counted enc.Encoder.solver ~assumptions:[ ml ] () with
    | Sat.Unsat -> Equivalent
    | Sat.Sat ->
        (* map model back through original input order: input i of g maps to
           input i of g2 (inputs created in the same order) *)
        let cex = ref [] in
        let name_arr = Array.of_list names in
        for i = 0 to n_in - 1 do
          let l2 = map.(Aig.node_of (Aig.input_lit g i)) in
          let v = Encoder.var_of enc (Aig.node_of l2) in
          if v <> 0 then
            cex := (name_arr.(i), Sat.value enc.Encoder.solver v) :: !cex
        done;
        Inequivalent (List.rev !cex)
  end

let check ?(engine = Sweep_engine) c1 c2 =
  require_comb c1;
  require_comb c2;
  if List.length (Circuit.outputs c1) <> List.length (Circuit.outputs c2) then
    invalid_arg "Cec: output counts differ";
  last_sat_calls := 0;
  match engine with
  | Bdd_engine -> check_bdd c1 c2
  | Sat_engine -> check_sat c1 c2
  | Sweep_engine -> check_sweep c1 c2

let counterexample_is_valid c1 c2 cex =
  let env = Hashtbl.create 16 in
  List.iter (fun (n, b) -> Hashtbl.replace env n b) cex;
  let outs c =
    let source s =
      match Hashtbl.find_opt env (Circuit.signal_name c s) with
      | Some b -> b
      | None -> false
    in
    let values = Eval.comb_eval c ~source in
    List.map (fun o -> values.(o)) (Circuit.outputs c)
  in
  let o1 = outs c1 and o2 = outs c2 in
  List.exists2 (fun a b -> a <> b) o1 o2
