(** Combinational equivalence checking.

    The paper reduces sequential verification to combinational verification
    and hands the result to "an in-house tool similar to [10, 12]".  This is
    that tool: three engines over latch-free netlists.

    Inputs of the two circuits are matched {e by name}; the variable
    universe is the union of both input sets (a missing input is a free
    variable the circuit ignores) — exactly the semantics needed for
    CBF/EDBF comparison, where the time- or event-indexed variables are
    encoded in the names.  Outputs are matched by position. *)

type counterexample = (string * bool) list
(** Assignment to (a subset of) the united primary inputs; unlisted inputs
    are [false]. *)

type verdict = Equivalent | Inequivalent of counterexample

type engine =
  | Bdd_engine  (** monolithic BDDs, shared variable per input name *)
  | Sat_engine  (** one CNF miter, one SAT call *)
  | Sweep_engine
      (** fraig-style: random simulation classes + incremental SAT merging,
          then a miter check on the swept AIG *)

val check : ?engine:engine -> Circuit.t -> Circuit.t -> verdict
(** Decides functional equivalence.  Default engine: [Sweep_engine].
    @raise Invalid_argument if either circuit contains latches or the output
    counts differ. *)

val counterexample_is_valid :
  Circuit.t -> Circuit.t -> counterexample -> bool
(** Replays a counterexample on both circuits and confirms some output pair
    differs. *)

val stats_last_sat_calls : unit -> int
(** Number of SAT solver invocations made by the most recent {!check} call
    (diagnostic; not thread-safe). *)
