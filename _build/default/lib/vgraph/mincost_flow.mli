(** Minimum-cost flow by successive shortest paths with potentials.

    Used as the LP engine for minimum-area retiming: the dual of
    [min Σ a(v)·r(v)  s.t.  r(u) − r(v) ≤ b(u,v)] is a min-cost flow whose
    optimal node potentials give the optimal retiming labels. *)

type arc = { src : int; dst : int; capacity : int; cost : int }

type result = {
  flow : int array;  (** flow on each arc, in input order *)
  potentials : int array;
      (** node potentials [π] with [cost + π(src) − π(dst) ≥ 0] on every
          residual arc at optimality *)
  total_cost : int;
}

val solve : nodes:int -> arcs:arc list -> supply:int array -> result option
(** [solve ~nodes ~arcs ~supply] computes a feasible min-cost flow where node
    [v] has net outflow [supply.(v)] (positive = source, negative = sink).
    Supplies must sum to zero.  Returns [None] when no feasible flow
    exists. *)
