type arc = { src : int; dst : int; capacity : int; cost : int }

type result = { flow : int array; potentials : int array; total_cost : int }

(* Residual network as paired arcs: arc 2i is forward arc i, arc 2i+1 its
   reverse.  [head.(a)], [res.(a)] (residual capacity), [cost_.(a)]. *)
let solve ~nodes ~arcs ~supply =
  let m = List.length arcs in
  if Array.length supply <> nodes then invalid_arg "Mincost_flow.solve: supply size";
  if Array.fold_left ( + ) 0 supply <> 0 then
    invalid_arg "Mincost_flow.solve: supplies must sum to zero";
  let head = Array.make (2 * m) 0 in
  let tail = Array.make (2 * m) 0 in
  let res = Array.make (2 * m) 0 in
  let cost_ = Array.make (2 * m) 0 in
  let adj = Array.make nodes [] in
  List.iteri
    (fun i a ->
      if a.capacity < 0 then invalid_arg "Mincost_flow.solve: negative capacity";
      let f = 2 * i and b = (2 * i) + 1 in
      head.(f) <- a.dst;
      tail.(f) <- a.src;
      res.(f) <- a.capacity;
      cost_.(f) <- a.cost;
      head.(b) <- a.src;
      tail.(b) <- a.dst;
      res.(b) <- 0;
      cost_.(b) <- -a.cost;
      adj.(a.src) <- f :: adj.(a.src);
      adj.(a.dst) <- b :: adj.(a.dst))
    arcs;
  let excess = Array.copy supply in
  let pi = Array.make nodes 0 in
  (* Initial potentials by Bellman-Ford over residual arcs with capacity,
     from a virtual source (handles negative costs). *)
  let dist = Array.make nodes 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < nodes do
    changed := false;
    incr rounds;
    for a = 0 to (2 * m) - 1 do
      if res.(a) > 0 && dist.(tail.(a)) + cost_.(a) < dist.(head.(a)) then begin
        dist.(head.(a)) <- dist.(tail.(a)) + cost_.(a);
        changed := true
      end
    done
  done;
  Array.blit dist 0 pi 0 nodes;
  let infeasible = ref false in
  let total_excess () =
    let t = ref 0 in
    Array.iter (fun e -> if e > 0 then t := !t + e) excess;
    !t
  in
  (* Dijkstra on reduced costs from the set of excess nodes to any deficit
     node; augment along the path. *)
  let parent_arc = Array.make nodes (-1) in
  while (not !infeasible) && total_excess () > 0 do
    let d = Array.make nodes max_int in
    Array.fill parent_arc 0 nodes (-1);
    let heap =
      Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) ~dummy:(0, -1) ()
    in
    for v = 0 to nodes - 1 do
      if excess.(v) > 0 then begin
        d.(v) <- 0;
        Heap.add heap (0, v)
      end
    done;
    while not (Heap.is_empty heap) do
      let dv, v = Heap.pop_min heap in
      if dv = d.(v) then
        List.iter
          (fun a ->
            if res.(a) > 0 then begin
              let w = head.(a) in
              let rc = cost_.(a) + pi.(v) - pi.(w) in
              assert (rc >= 0);
              let nd = dv + rc in
              if nd < d.(w) then begin
                d.(w) <- nd;
                parent_arc.(w) <- a;
                Heap.add heap (nd, w)
              end
            end)
          adj.(v)
    done;
    (* pick a reachable deficit node *)
    let sink = ref (-1) in
    for v = 0 to nodes - 1 do
      if excess.(v) < 0 && d.(v) < max_int && (!sink = -1 || d.(v) < d.(!sink)) then
        sink := v
    done;
    if !sink = -1 then infeasible := true
    else begin
      (* Johnson-style potential update: π(v) += min(d(v), d(sink)) keeps all
         residual reduced costs non-negative, including arcs into nodes not
         reached this round. *)
      let cap = d.(!sink) in
      for v = 0 to nodes - 1 do
        pi.(v) <- pi.(v) + min d.(v) cap
      done;
      (* find bottleneck *)
      let rec bottleneck v acc =
        let a = parent_arc.(v) in
        if a = -1 then acc else bottleneck tail.(a) (min acc res.(a))
      in
      let s = !sink in
      (* source of path = node with no parent *)
      let rec path_src v = if parent_arc.(v) = -1 then v else path_src tail.(parent_arc.(v)) in
      let src = path_src s in
      let amount = min (min excess.(src) (- excess.(s))) (bottleneck s max_int) in
      assert (amount > 0);
      let rec push v =
        let a = parent_arc.(v) in
        if a <> -1 then begin
          res.(a) <- res.(a) - amount;
          res.(a lxor 1) <- res.(a lxor 1) + amount;
          push tail.(a)
        end
      in
      push s;
      excess.(src) <- excess.(src) - amount;
      excess.(s) <- excess.(s) + amount
    end
  done;
  if !infeasible then None
  else begin
    let flow = Array.make m 0 in
    let total = ref 0 in
    List.iteri
      (fun i a ->
        let f = res.((2 * i) + 1) in
        flow.(i) <- f;
        total := !total + (f * a.cost))
      arcs;
    Some { flow; potentials = pi; total_cost = !total }
  end
