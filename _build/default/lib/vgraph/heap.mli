(** Binary min-heaps over an arbitrary ordering. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> dummy:'a -> unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val pop_min : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val clear : 'a t -> unit
