lib/vgraph/bellman_ford.mli: Digraph
