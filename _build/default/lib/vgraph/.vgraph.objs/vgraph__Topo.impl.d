lib/vgraph/topo.ml: Array Digraph List Option Queue
