lib/vgraph/topo.mli: Digraph
