lib/vgraph/mincost_flow.mli:
