lib/vgraph/dijkstra.ml: Array Digraph Heap
