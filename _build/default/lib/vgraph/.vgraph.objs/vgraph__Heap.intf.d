lib/vgraph/heap.mli:
