lib/vgraph/scc.mli: Digraph
