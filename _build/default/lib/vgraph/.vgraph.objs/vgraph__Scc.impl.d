lib/vgraph/scc.ml: Array Digraph List
