lib/vgraph/mfvs.mli: Digraph
