lib/vgraph/digraph.ml: List Vec
