lib/vgraph/bellman_ford.ml: Array Digraph
