lib/vgraph/heap.ml: Vec
