lib/vgraph/dijkstra.mli: Digraph
