lib/vgraph/mincost_flow.ml: Array Heap List
