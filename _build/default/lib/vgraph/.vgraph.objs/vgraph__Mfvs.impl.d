lib/vgraph/mfvs.ml: Array Digraph List Queue Topo
