lib/vgraph/digraph.mli:
