lib/vgraph/vec.mli:
