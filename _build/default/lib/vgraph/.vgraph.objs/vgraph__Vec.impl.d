lib/vgraph/vec.ml: Array List Printf
