(* Iterative Tarjan: explicit stack of (node, remaining successor edges). *)

let components g =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comps = ref [] in
  let rec visit root =
    let call = ref [ (root, succ_edges root) ] in
    push_node root;
    while !call <> [] do
      match !call with
      | [] -> assert false
      | (v, edges) :: rest -> (
          match edges with
          | [] ->
              call := rest;
              (match rest with
              | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then pop_component v
          | e :: edges' ->
              call := (v, edges') :: rest;
              let w = (Digraph.edge g e).dst in
              if index.(w) = -1 then begin
                push_node w;
                call := (w, succ_edges w) :: !call
              end
              else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
    done
  and succ_edges v = Digraph.succ g v
  and push_node v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true
  and pop_component v =
    let rec take acc =
      match !stack with
      | [] -> assert false
      | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else take (w :: acc)
    in
    comps := take [] :: !comps
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  List.rev !comps

let component_ids g =
  let comps = components g in
  let id = Array.make (Digraph.node_count g) (-1) in
  let count = List.length comps in
  List.iteri (fun i comp -> List.iter (fun v -> id.(v) <- i) comp) comps;
  (id, count)

let is_nontrivial g = function
  | [] -> false
  | [ v ] -> Digraph.has_self_loop g v
  | _ :: _ :: _ -> true
