let shortest g ~src =
  let n = Digraph.node_count g in
  let dist = Array.make n max_int in
  let heap = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) ~dummy:(0, -1) () in
  dist.(src) <- 0;
  Heap.add heap (0, src);
  while not (Heap.is_empty heap) do
    let d, v = Heap.pop_min heap in
    if d = dist.(v) then
      Digraph.iter_succ g v (fun _ e ->
          assert (e.weight >= 0);
          let nd = d + e.weight in
          if nd < dist.(e.dst) then begin
            dist.(e.dst) <- nd;
            Heap.add heap (nd, e.dst)
          end)
  done;
  dist

(* Lexicographic (min primary, then max secondary).  We order heap entries by
   (w, -d); a node is settled the first time it is popped with its current
   best label. *)
let lexicographic g ~src ~tie =
  let n = Digraph.node_count g in
  let w = Array.make n max_int in
  let d = Array.make n 0 in
  let cmp (w1, nd1, _) (w2, nd2, _) =
    if w1 <> w2 then compare w1 w2 else compare nd1 nd2
  in
  let heap = Heap.create ~cmp ~dummy:(0, 0, -1) () in
  w.(src) <- 0;
  d.(src) <- 0;
  Heap.add heap (0, 0, src);
  while not (Heap.is_empty heap) do
    let wv, ndv, v = Heap.pop_min heap in
    if wv = w.(v) && ndv = -d.(v) then
      Digraph.iter_succ g v (fun _ e ->
          assert (e.weight >= 0);
          let w' = wv + e.weight in
          let d' = d.(v) + tie e in
          let better =
            w' < w.(e.dst) || (w' = w.(e.dst) && d' > d.(e.dst))
          in
          if better then begin
            w.(e.dst) <- w';
            d.(e.dst) <- d';
            Heap.add heap (w', -d', e.dst)
          end)
  done;
  (w, d)
