(** Shortest paths with non-negative weights, including the lexicographic
    two-criteria variant used to build retiming [W]/[D] matrices. *)

val shortest : Digraph.t -> src:int -> int array
(** [shortest g ~src] is the array of shortest distances from [src]
    ([max_int] for unreachable nodes).  All edge weights must be
    non-negative. *)

val lexicographic :
  Digraph.t -> src:int -> tie:(Digraph.edge -> int) -> int array * int array
(** [lexicographic g ~src ~tie] minimizes primary weight, and among paths of
    equal primary weight *maximizes* the sum of [tie e] — exactly the
    [(W(u,v), D(u,v))] computation of Leiserson–Saxe retiming where the
    primary weight is the latch count and the tie-breaker the accumulated
    gate delay.  Returns [(w, d)]; unreachable entries are [(max_int, 0)]. *)
