(** Topological ordering and acyclicity tests. *)

val sort : Digraph.t -> int list option
(** [sort g] is [Some order] (sources first) if [g] is acyclic, [None]
    otherwise. *)

val sort_exn : Digraph.t -> int list
(** @raise Invalid_argument if the graph has a cycle. *)

val is_acyclic : Digraph.t -> bool

val find_cycle : Digraph.t -> int list option
(** [find_cycle g] is [Some nodes] — a directed cycle listed in order — when
    one exists. *)

val levels : Digraph.t -> int array
(** Longest-path level of each node in an acyclic graph (sources at level
    0), counting each edge as one unit.  @raise Invalid_argument on cyclic
    input. *)
