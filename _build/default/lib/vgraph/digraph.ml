type edge = { src : int; dst : int; weight : int }

type t = {
  edges : edge Vec.t;
  succs : int list Vec.t; (* node -> outgoing edge ids *)
  preds : int list Vec.t; (* node -> incoming edge ids *)
}

let dummy_edge = { src = -1; dst = -1; weight = 0 }

let create () =
  {
    edges = Vec.create ~dummy:dummy_edge ();
    succs = Vec.create ~dummy:[] ();
    preds = Vec.create ~dummy:[] ();
  }

let add_node g =
  let i = Vec.push g.succs [] in
  let j = Vec.push g.preds [] in
  assert (i = j);
  i

let node_count g = Vec.length g.succs

let add_nodes g n =
  while node_count g < n do
    ignore (add_node g)
  done

let edge_count g = Vec.length g.edges

let check_node g v =
  if v < 0 || v >= node_count g then invalid_arg "Digraph: bad node id"

let add_edge g ?(weight = 0) u v =
  check_node g u;
  check_node g v;
  let id = Vec.push g.edges { src = u; dst = v; weight } in
  Vec.set g.succs u (id :: Vec.get g.succs u);
  Vec.set g.preds v (id :: Vec.get g.preds v);
  id

let edge g id = Vec.get g.edges id

let set_weight g id w =
  let e = Vec.get g.edges id in
  Vec.set g.edges id { e with weight = w }

let succ g u = Vec.get g.succs u
let pred g v = Vec.get g.preds v
let out_degree g u = List.length (succ g u)
let in_degree g v = List.length (pred g v)

let iter_edges f g = Vec.iteri (fun id e -> f id e) g.edges

let iter_succ g u f = List.iter (fun id -> f id (edge g id)) (succ g u)
let iter_pred g v f = List.iter (fun id -> f id (edge g id)) (pred g v)

let has_self_loop g u = List.exists (fun id -> (edge g id).dst = u) (succ g u)

let copy g =
  { edges = Vec.copy g.edges; succs = Vec.copy g.succs; preds = Vec.copy g.preds }

let transpose g =
  let t = create () in
  add_nodes t (node_count g);
  iter_edges (fun _ e -> ignore (add_edge t ~weight:e.weight e.dst e.src)) g;
  t

let induced g ~keep =
  let t = create () in
  add_nodes t (node_count g);
  iter_edges
    (fun _ e ->
      if keep e.src && keep e.dst then ignore (add_edge t ~weight:e.weight e.src e.dst))
    g;
  t
