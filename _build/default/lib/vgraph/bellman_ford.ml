type result = Distances of int array | Negative_cycle of int list

(* Bellman-Ford with a virtual source: dist starts at 0 for every node.
   Tracks predecessor edges to reconstruct a negative cycle. *)
let solve g =
  let n = Digraph.node_count g in
  let dist = Array.make n 0 in
  let pred = Array.make n (-1) in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    Digraph.iter_edges
      (fun _ (e : Digraph.edge) ->
        if dist.(e.src) + e.weight < dist.(e.dst) then begin
          dist.(e.dst) <- dist.(e.src) + e.weight;
          pred.(e.dst) <- e.src;
          changed := true
        end)
      g;
    incr rounds
  done;
  if not !changed then Distances dist
  else begin
    (* A node updated in round n lies on or reaches a negative cycle: walk
       predecessors n times to land inside the cycle, then collect it. *)
    let v = ref (-1) in
    Digraph.iter_edges
      (fun _ (e : Digraph.edge) ->
        if !v = -1 && dist.(e.src) + e.weight < dist.(e.dst) then v := e.dst)
      g;
    assert (!v >= 0);
    for _ = 1 to n do
      v := pred.(!v)
    done;
    let start = !v in
    let rec collect u acc =
      let p = pred.(u) in
      if p = start then acc else collect p (p :: acc)
    in
    Negative_cycle (start :: collect start [])
  end

let feasible_potentials g =
  match solve g with Distances d -> Some d | Negative_cycle _ -> None
