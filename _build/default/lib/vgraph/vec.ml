type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i v.len)

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let grow v =
  let n = Array.length v.data in
  let data = Array.make (2 * n) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  let i = v.len in
  Array.unsafe_set v.data i x;
  v.len <- i + 1;
  i

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = Array.unsafe_get v.data v.len in
  Array.unsafe_set v.data v.len v.dummy;
  x

let top v =
  if v.len = 0 then invalid_arg "Vec.top: empty";
  Array.unsafe_get v.data (v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get v i :: acc) in
  loop (v.len - 1) []

let of_list ~dummy xs =
  let v = create ~capacity:(max 1 (List.length xs)) ~dummy () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let map_to_list f v = List.map f (to_list v)

let exists p v =
  let rec loop i = i < v.len && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }
