let sort g =
  let n = Digraph.node_count g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges (fun _ e -> indeg.(e.dst) <- indeg.(e.dst) + 1) g;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    order := v :: !order;
    Digraph.iter_succ g v (fun _ e ->
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then Queue.add e.dst queue)
  done;
  if !seen = n then Some (List.rev !order) else None

let sort_exn g =
  match sort g with
  | Some order -> order
  | None -> invalid_arg "Topo.sort_exn: graph has a cycle"

let is_acyclic g = Option.is_some (sort g)

(* Iterative DFS with colors; returns the first back-edge cycle found. *)
let find_cycle g =
  let n = Digraph.node_count g in
  let color = Array.make n 0 in
  (* 0 white, 1 gray, 2 black *)
  let parent = Array.make n (-1) in
  let cycle = ref None in
  let rec dfs v =
    color.(v) <- 1;
    Digraph.iter_succ g v (fun _ e ->
        if !cycle = None then
          let w = e.dst in
          if color.(w) = 0 then begin
            parent.(w) <- v;
            dfs w
          end
          else if color.(w) = 1 then begin
            (* found cycle w -> ... -> v -> w *)
            let rec collect u acc = if u = w then w :: acc else collect parent.(u) (u :: acc) in
            cycle := Some (collect v [])
          end);
    color.(v) <- 2
  in
  let v = ref 0 in
  while !cycle = None && !v < n do
    if color.(!v) = 0 then dfs !v;
    incr v
  done;
  !cycle

let levels g =
  let order = sort_exn g in
  let lev = Array.make (Digraph.node_count g) 0 in
  List.iter
    (fun v ->
      Digraph.iter_succ g v (fun _ e -> lev.(e.dst) <- max lev.(e.dst) (lev.(v) + 1)))
    order;
  lev
