(** Single-source shortest paths with negative weights.

    Used for difference-constraint feasibility in retiming: a system
    [r(u) - r(v) <= w] is feasible iff the constraint graph (edge [v -> u]
    with weight [w]) has no negative cycle; the shortest-path distances give
    a satisfying assignment. *)

type result =
  | Distances of int array  (** shortest distance from the virtual source *)
  | Negative_cycle of int list  (** nodes of some negative-weight cycle *)

val solve : Digraph.t -> result
(** Runs Bellman–Ford from a virtual super-source connected to every node
    with weight 0. *)

val feasible_potentials : Digraph.t -> int array option
(** [feasible_potentials g] is [Some p] with [p.(dst) <= p.(src) + weight]
    for every edge, or [None] if a negative cycle exists. *)
