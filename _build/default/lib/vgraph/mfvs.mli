(** Minimum feedback vertex set heuristic.

    Finding a minimum set of vertices whose removal makes a digraph acyclic
    is NP-complete; the paper uses a modified Lee–Reddy partial-scan
    heuristic.  We implement the classical reduction + greedy selection
    scheme followed by a redundancy-removal minimization pass. *)

val solve : Digraph.t -> candidates:(int -> bool) -> int list
(** [solve g ~candidates] returns a set [S] of candidate nodes such that
    removing [S] from [g] leaves no cycle through a candidate-breakable
    cycle; every cycle of [g] passes through at least one node of [S],
    provided every cycle contains at least one candidate (which holds for
    latch-dependency graphs where candidates are the latches).

    @raise Invalid_argument if some cycle contains no candidate node. *)

val is_feedback_set : Digraph.t -> int list -> bool
(** [is_feedback_set g s] checks that removing [s] leaves [g] acyclic. *)
