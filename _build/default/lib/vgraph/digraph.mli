(** Mutable directed graphs with integer edge weights.

    Nodes are dense integers [0 .. node_count - 1].  Parallel edges and
    self-loops are allowed; each edge carries an [int] weight (used for latch
    counts in retiming graphs and for costs in flow problems). *)

type t

type edge = { src : int; dst : int; weight : int }

val create : unit -> t

val add_node : t -> int
(** Allocates and returns a fresh node id. *)

val add_nodes : t -> int -> unit
(** [add_nodes g n] ensures [g] has at least [n] nodes. *)

val node_count : t -> int

val edge_count : t -> int

val add_edge : t -> ?weight:int -> int -> int -> int
(** [add_edge g u v] adds an edge [u -> v] (default weight 0) and returns its
    edge id. *)

val edge : t -> int -> edge

val set_weight : t -> int -> int -> unit
(** [set_weight g e w] updates the weight of edge [e]. *)

val succ : t -> int -> int list
(** Outgoing edge ids of a node. *)

val pred : t -> int -> int list
(** Incoming edge ids of a node. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_edges : (int -> edge -> unit) -> t -> unit

val iter_succ : t -> int -> (int -> edge -> unit) -> unit
(** [iter_succ g u f] applies [f edge_id edge] to every outgoing edge of
    [u]. *)

val iter_pred : t -> int -> (int -> edge -> unit) -> unit

val has_self_loop : t -> int -> bool

val copy : t -> t

val transpose : t -> t

val induced : t -> keep:(int -> bool) -> t
(** Subgraph on the nodes satisfying [keep] (node ids preserved; dropped
    nodes become isolated). *)
