(** Strongly connected components (Tarjan's algorithm, iterative). *)

val components : Digraph.t -> int list list
(** The SCCs of the graph in reverse topological order of the component
    DAG: sink components (those every cross edge points into) come first,
    so for a cross-component edge [u -> v], [v]'s component index is
    smaller than [u]'s. *)

val component_ids : Digraph.t -> int array * int
(** [component_ids g] is [(id, count)] where [id.(v)] is the component index
    of node [v] and [count] is the number of components.  Indices are
    consistent with [components]. *)

val is_nontrivial : Digraph.t -> int list -> bool
(** A component is non-trivial if it has more than one node, or is a single
    node with a self-loop — i.e. it contains a cycle. *)
