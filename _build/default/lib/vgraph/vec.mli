(** Growable vectors.

    A thin dynamic-array abstraction used throughout the project (BDD node
    tables, AIG nodes, adjacency lists).  Elements are stored contiguously;
    [push] is amortized O(1). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector.  [dummy] fills unused capacity and
    is never observable through the API. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val pop : 'a t -> 'a
(** Removes and returns the last element.  @raise Invalid_argument if
    empty. *)

val top : 'a t -> 'a

val clear : 'a t -> unit

val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to length [n] (which must not exceed the
    current length). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val of_list : dummy:'a -> 'a list -> 'a t

val map_to_list : ('a -> 'b) -> 'a t -> 'b list

val exists : ('a -> bool) -> 'a t -> bool

val copy : 'a t -> 'a t
