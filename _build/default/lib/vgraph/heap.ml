type 'a t = { cmp : 'a -> 'a -> int; data : 'a Vec.t }

let create ~cmp ~dummy () = { cmp; data = Vec.create ~dummy () }

let size h = Vec.length h.data

let is_empty h = size h = 0

let swap h i j =
  let x = Vec.get h.data i and y = Vec.get h.data j in
  Vec.set h.data i y;
  Vec.set h.data j x

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (Vec.get h.data i) (Vec.get h.data parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = size h in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && h.cmp (Vec.get h.data l) (Vec.get h.data !smallest) < 0 then smallest := l;
  if r < n && h.cmp (Vec.get h.data r) (Vec.get h.data !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h x =
  let i = Vec.push h.data x in
  sift_up h i

let pop_min h =
  if is_empty h then invalid_arg "Heap.pop_min: empty";
  let root = Vec.get h.data 0 in
  let last = Vec.pop h.data in
  if not (is_empty h) then begin
    Vec.set h.data 0 last;
    sift_down h 0
  end;
  root

let clear h = Vec.clear h.data
