(* Greedy MFVS with incremental degree maintenance:
   1. trim nodes that lie on no cycle (no live in- or out-edges, and no
      self-loop) until a fixpoint;
   2. if nothing is left alive, the chosen set is a feedback vertex set
      (a non-empty fully-trimmed graph always contains a cycle);
   3. otherwise pick a candidate — a self-loop first (forced), else the
      max in*out degree node — remove it, and repeat;
   4. finally drop redundant picks (whose return keeps the graph acyclic). *)

let removed_is_acyclic g removed =
  Topo.is_acyclic (Digraph.induced g ~keep:(fun v -> not removed.(v)))

let is_feedback_set g s =
  let removed = Array.make (Digraph.node_count g) false in
  List.iter (fun v -> removed.(v) <- true) s;
  removed_is_acyclic g removed

let solve g ~candidates =
  let n = Digraph.node_count g in
  let alive = Array.make n true in
  let indeg = Array.make n 0 in
  let outdeg = Array.make n 0 in
  let selfloop = Array.make n false in
  Digraph.iter_edges
    (fun _ e ->
      if e.src = e.dst then selfloop.(e.src) <- true
      else begin
        outdeg.(e.src) <- outdeg.(e.src) + 1;
        indeg.(e.dst) <- indeg.(e.dst) + 1
      end)
    g;
  let live_count = ref n in
  let chosen = ref [] in
  let queue = Queue.create () in
  let kill v =
    if alive.(v) then begin
      alive.(v) <- false;
      decr live_count;
      Digraph.iter_succ g v (fun _ e ->
          if e.dst <> v && alive.(e.dst) then begin
            indeg.(e.dst) <- indeg.(e.dst) - 1;
            if indeg.(e.dst) = 0 then Queue.add e.dst queue
          end);
      Digraph.iter_pred g v (fun _ e ->
          if e.src <> v && alive.(e.src) then begin
            outdeg.(e.src) <- outdeg.(e.src) - 1;
            if outdeg.(e.src) = 0 then Queue.add e.src queue
          end)
    end
  in
  let trim () =
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if alive.(v) && (not selfloop.(v)) && (indeg.(v) = 0 || outdeg.(v) = 0) then kill v
    done
  in
  for v = 0 to n - 1 do
    if (not selfloop.(v)) && (indeg.(v) = 0 || outdeg.(v) = 0) then Queue.add v queue
  done;
  trim ();
  while !live_count > 0 do
    (* pick: forced self-loop candidate first, else max in*out product *)
    let best = ref (-1) in
    let best_score = ref (-1) in
    for v = 0 to n - 1 do
      if alive.(v) && candidates v then begin
        if selfloop.(v) then begin
          if !best_score < max_int then begin
            best := v;
            best_score := max_int
          end
        end
        else begin
          let score = indeg.(v) * outdeg.(v) in
          if score > !best_score then begin
            best_score := score;
            best := v
          end
        end
      end
    done;
    if !best = -1 then invalid_arg "Mfvs.solve: a cycle contains no candidate node";
    chosen := !best :: !chosen;
    kill !best;
    trim ()
  done;
  (* Redundancy removal (reverse pick order) costs O(|chosen| · E); skip it
     on huge dense graphs where the greedy set is already close and the
     quadratic pass would dominate. *)
  let work = List.length !chosen * Digraph.edge_count g in
  if work > 20_000_000 then List.sort compare !chosen
  else begin
    let removed = Array.make n false in
    List.iter (fun v -> removed.(v) <- true) !chosen;
    let final =
      List.filter
        (fun v ->
          removed.(v) <- false;
          if removed_is_acyclic g removed then false
          else begin
            removed.(v) <- true;
            true
          end)
        !chosen
    in
    List.sort compare final
  end
