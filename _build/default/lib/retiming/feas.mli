(** Minimum-period retiming: the FEAS algorithm of Leiserson–Saxe with a
    binary search over clock periods (unit-delay model). *)

val arrival : Rgraph.t -> r:int array -> int array
(** Combinational arrival time Δ(v) of every vertex under retiming labels
    [r]: the longest register-free path delay ending at (and including)
    [v]. *)

val period_of : Rgraph.t -> r:int array -> int
(** Clock period of the retimed graph: max arrival time. *)

val feasible : ?init:int array -> Rgraph.t -> period:int -> int array option
(** [feasible g ~period] is [Some r] (normalized, legal) if a retiming
    achieving the period exists, starting the FEAS iteration from [init]
    (default all-zero, which must be legal). *)

val min_period : Rgraph.t -> int * int array
(** The minimum feasible clock period and labels achieving it. *)
