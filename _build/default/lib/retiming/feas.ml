open Vgraph
let zero_weight_topo (g : Rgraph.t) ~r =
  (* subgraph of register-free edges *)
  let sub = Digraph.create () in
  Digraph.add_nodes sub (Digraph.node_count g.graph);
  Digraph.iter_edges
    (fun _ e ->
      let w = e.weight + r.(e.dst) - r.(e.src) in
      assert (w >= 0);
      if w = 0 then ignore (Digraph.add_edge sub e.src e.dst))
    g.graph;
  (sub, Topo.sort_exn sub)

let arrival g ~r =
  let sub, order = zero_weight_topo g ~r in
  let n = Digraph.node_count sub in
  let delta = Array.make n 0 in
  List.iter
    (fun v ->
      let best = ref 0 in
      Digraph.iter_pred sub v (fun _ e -> best := max !best delta.(e.src));
      delta.(v) <- !best + g.delay.(v))
    order;
  delta

let period_of g ~r = Array.fold_left max 0 (arrival g ~r)

let feasible ?init g ~period =
  let n = Digraph.node_count g.Rgraph.graph in
  let r = match init with Some r -> Array.copy r | None -> Array.make n 0 in
  assert (Rgraph.is_legal g ~r:(Rgraph.normalize g ~r));
  (* FEAS: repeatedly advance every too-late gate by one register.  The host
     vertices are pinned; if an increment would make an I/O edge negative
     the period is unachievable (a register cannot move past the
     environment), which surfaces as an illegal intermediate labeling. *)
  let ok = ref false in
  let legal = ref true in
  let i = ref 0 in
  while !legal && (not !ok) && !i <= n do
    let delta = arrival g ~r in
    let violated = ref false in
    for v = 2 to n - 1 do
      if delta.(v) > period then begin
        violated := true;
        r.(v) <- r.(v) + 1
      end
    done;
    if not !violated then ok := true
    else if not (Rgraph.is_legal g ~r) then legal := false;
    incr i
  done;
  if !ok then Some (Rgraph.normalize g ~r) else None

let min_period g =
  let n = Digraph.node_count g.Rgraph.graph in
  let r0 = Array.make n 0 in
  let hi0 = period_of g ~r:r0 in
  let lo0 = Array.fold_left max 0 g.delay in
  let rec search lo hi best =
    if lo >= hi then best
    else
      let mid = (lo + hi) / 2 in
      match feasible g ~period:mid with
      | Some r -> search lo mid (mid, r)
      | None -> search (mid + 1) hi best
  in
  search lo0 hi0 (hi0, r0)
