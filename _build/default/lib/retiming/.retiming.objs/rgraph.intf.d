lib/retiming/rgraph.mli: Circuit Digraph Vgraph
