lib/retiming/retime.ml: Circuit Feas Minarea Rgraph
