lib/retiming/classes.ml: Array Circuit Fun Hashtbl List Option Retime
