lib/retiming/minarea.mli: Rgraph
