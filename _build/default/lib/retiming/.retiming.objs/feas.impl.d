lib/retiming/feas.ml: Array Digraph List Rgraph Topo Vgraph
