lib/retiming/minarea.ml: Array Bellman_ford Digraph Dijkstra Feas List Mincost_flow Rgraph Vgraph
