lib/retiming/classes.mli: Circuit Retime
