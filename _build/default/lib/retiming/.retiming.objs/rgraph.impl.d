lib/retiming/rgraph.ml: Array Circuit Digraph Hashtbl List Printf Vgraph
