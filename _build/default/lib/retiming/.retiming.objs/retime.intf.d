lib/retiming/retime.mli: Circuit
