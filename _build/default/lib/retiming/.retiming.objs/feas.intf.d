lib/retiming/feas.mli: Rgraph
