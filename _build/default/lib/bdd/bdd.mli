(** Reduced ordered binary decision diagrams.

    A from-scratch ROBDD package: hash-consed nodes in a manager, an ITE
    computed cache, Boolean connectives, cofactors, composition,
    quantification, support and unateness queries.  Node handles are only
    meaningful together with the manager that created them.

    Variables are identified by dense integers in creation order, which is
    also the BDD variable order (smaller index = closer to the root). *)

type man
(** A BDD manager: node table, unique table and operation caches. *)

type t
(** A BDD node handle (a Boolean function over the manager's variables). *)

val man : ?cache_size:int -> unit -> man

val zero : man -> t
val one : man -> t

val var : man -> int -> t
(** [var m i] is the function of the [i]-th variable, allocating fresh
    variables as needed so that all indices [0..i] exist. *)

val nvars : man -> int

val node_count : man -> int
(** Total live nodes in the manager (diagnostic). *)

val equal : t -> t -> bool
(** Constant-time semantic equality (hash-consing canonicity). *)

val id : t -> int
(** Stable canonical identity of the node within its manager (equal
    functions have equal ids). *)

val is_zero : man -> t -> bool
val is_one : man -> t -> bool

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val nand_ : man -> t -> t -> t
val nor_ : man -> t -> t -> t
val xnor_ : man -> t -> t -> t
val implies : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

val and_list : man -> t list -> t
val or_list : man -> t list -> t

val cofactor : man -> t -> var:int -> bool -> t
(** [cofactor m f ~var b] is f with [var] fixed to [b]. *)

val compose : man -> t -> var:int -> t -> t
(** [compose m f ~var g] substitutes [g] for variable [var] in [f]. *)

val exists : man -> int list -> t -> t
val forall : man -> int list -> t -> t

val support : man -> t -> int list
(** Variables the function structurally depends on, ascending. *)

val depends_on : man -> t -> int -> bool

val size : man -> t -> int
(** Number of DAG nodes of [f] including terminals. *)

val eval : man -> t -> (int -> bool) -> bool
(** [eval m f env] evaluates [f] under the assignment [env]. *)

val any_sat : man -> t -> (int * bool) list option
(** A satisfying partial assignment (variables not mentioned are
    don't-care), or [None] if [f] is the zero function. *)

val sat_count : man -> t -> nvars:int -> float
(** Number of satisfying assignments over [nvars] variables. *)

val is_positive_unate : man -> t -> var:int -> bool
(** [f] is positive unate in [x] iff [f|x=0 ≤ f|x=1]. *)

val is_negative_unate : man -> t -> var:int -> bool

val leq : man -> t -> t -> bool
(** Functional implication [f ≤ g]. *)

val fold :
  man ->
  t ->
  const:(bool -> 'a) ->
  node:(int -> 'a -> 'a -> 'a) ->
  'a
(** Bottom-up fold over the DAG of [f]; [node v lo hi] combines the
    results for the low/high children of a node labelled with variable
    [v].  Each DAG node is visited once. *)
