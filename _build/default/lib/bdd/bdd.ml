(* ROBDD with hash-consed nodes.  Node 0 is the constant false, node 1 the
   constant true.  Internal nodes satisfy low <> high and var(node) <
   var(children) (terminals have var = max_int). *)

type t = int

type man = {
  var_of : int Vgraph.Vec.t; (* node -> variable *)
  low_of : int Vgraph.Vec.t;
  high_of : int Vgraph.Vec.t;
  unique : (int * int * int, int) Hashtbl.t; (* (var, low, high) -> node *)
  ite_cache : (int * int * int, int) Hashtbl.t;
  quant_cache : (int * int * bool, int) Hashtbl.t; (* (f, var-set id, exist?) *)
  compose_cache : (int * int * int, int) Hashtbl.t; (* (f, var, g) *)
  mutable nvars : int;
  mutable quant_set_id : int; (* distinguishes quantification sets in cache *)
}

let terminal_var = max_int

let man ?(cache_size = 1 lsl 14) () =
  let m =
    {
      var_of = Vgraph.Vec.create ~dummy:0 ();
      low_of = Vgraph.Vec.create ~dummy:0 ();
      high_of = Vgraph.Vec.create ~dummy:0 ();
      unique = Hashtbl.create cache_size;
      ite_cache = Hashtbl.create cache_size;
      quant_cache = Hashtbl.create 256;
      compose_cache = Hashtbl.create 256;
      nvars = 0;
      quant_set_id = 0;
    }
  in
  (* terminals 0 and 1 *)
  ignore (Vgraph.Vec.push m.var_of terminal_var);
  ignore (Vgraph.Vec.push m.low_of 0);
  ignore (Vgraph.Vec.push m.high_of 0);
  ignore (Vgraph.Vec.push m.var_of terminal_var);
  ignore (Vgraph.Vec.push m.low_of 1);
  ignore (Vgraph.Vec.push m.high_of 1);
  m

let zero _ = 0
let one _ = 1
let is_zero _ f = f = 0
let is_one _ f = f = 1
let equal (a : t) (b : t) = a = b
let id (a : t) = a

let var_of m n = Vgraph.Vec.get m.var_of n
let low_of m n = Vgraph.Vec.get m.low_of n
let high_of m n = Vgraph.Vec.get m.high_of n

let mk m v lo hi =
  if lo = hi then lo
  else
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        let n = Vgraph.Vec.push m.var_of v in
        ignore (Vgraph.Vec.push m.low_of lo);
        ignore (Vgraph.Vec.push m.high_of hi);
        Hashtbl.add m.unique key n;
        n

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative index";
  if i >= m.nvars then m.nvars <- i + 1;
  mk m i 0 1

let nvars m = m.nvars
let node_count m = Vgraph.Vec.length m.var_of

(* Shannon expansion of ITE with standard terminal cases. *)
let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let vf = var_of m f and vg = var_of m g and vh = var_of m h in
        let v = min vf (min vg vh) in
        let cof n vn = if vn = v then (low_of m n, high_of m n) else (n, n) in
        let f0, f1 = cof f vf in
        let g0, g1 = cof g vg in
        let h0, h1 = cof h vh in
        let lo = ite m f0 g0 h0 in
        let hi = ite m f1 g1 h1 in
        let r = mk m v lo hi in
        Hashtbl.replace m.ite_cache key r;
        r

let not_ m f = ite m f 0 1
let and_ m f g = ite m f g 0
let or_ m f g = ite m f 1 g
let xor_ m f g = ite m f (not_ m g) g
let nand_ m f g = not_ m (and_ m f g)
let nor_ m f g = not_ m (or_ m f g)
let xnor_ m f g = not_ m (xor_ m f g)
let implies m f g = ite m f g 1

let and_list m = List.fold_left (and_ m) 1
let or_list m = List.fold_left (or_ m) 0

let rec cofactor m f ~var b =
  if f <= 1 then f
  else
    let v = var_of m f in
    if v > var then f
    else if v = var then if b then high_of m f else low_of m f
    else
      (* v < var: rebuild. Use compose cache keyed by (f, var, b as 0/1+2) *)
      let key = (f, var, if b then -2 else -3) in
      match Hashtbl.find_opt m.compose_cache key with
      | Some r -> r
      | None ->
          let r =
            mk m v (cofactor m (low_of m f) ~var b) (cofactor m (high_of m f) ~var b)
          in
          Hashtbl.replace m.compose_cache key r;
          r

let rec compose m f ~var g =
  if f <= 1 then f
  else
    let v = var_of m f in
    if v > var then f
    else if v = var then ite m g (high_of m f) (low_of m f)
    else
      let key = (f, var, g) in
      match Hashtbl.find_opt m.compose_cache key with
      | Some r -> r
      | None ->
          let lo = compose m (low_of m f) ~var g in
          let hi = compose m (high_of m f) ~var g in
          (* the top variable of lo/hi may now be <= v, so use ite on var v *)
          let r = ite m (mk m v 0 1) hi lo in
          Hashtbl.replace m.compose_cache key r;
          r

let quantify m vars ~exist f =
  m.quant_set_id <- m.quant_set_id + 1;
  let set_id = m.quant_set_id in
  let in_set = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace in_set v ()) vars;
  let max_var = List.fold_left max (-1) vars in
  let rec go f =
    if f <= 1 then f
    else
      let v = var_of m f in
      if v > max_var then f
      else
        let key = (f, set_id, exist) in
        match Hashtbl.find_opt m.quant_cache key with
        | Some r -> r
        | None ->
            let lo = go (low_of m f) in
            let hi = go (high_of m f) in
            let r =
              if Hashtbl.mem in_set v then
                if exist then or_ m lo hi else and_ m lo hi
              else mk m v lo hi
            in
            Hashtbl.replace m.quant_cache key r;
            r
  in
  go f

let exists m vars f = quantify m vars ~exist:true f
let forall m vars f = quantify m vars ~exist:false f

let fold (type a) m f ~(const : bool -> a) ~(node : int -> a -> a -> a) : a =
  let memo : (int, a) Hashtbl.t = Hashtbl.create 64 in
  let rec go n =
    if n = 0 then const false
    else if n = 1 then const true
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
          let r = node (var_of m n) (go (low_of m n)) (go (high_of m n)) in
          Hashtbl.replace memo n r;
          r
  in
  go f

let support m f =
  let module IS = Set.Make (Int) in
  let s = fold m f ~const:(fun _ -> IS.empty) ~node:(fun v lo hi -> IS.add v (IS.union lo hi)) in
  IS.elements s

let depends_on m f v = List.mem v (support m f)

let size m f =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      if n > 1 then begin
        go (low_of m n);
        go (high_of m n)
      end
    end
  in
  go f;
  Hashtbl.length seen

let eval m f env =
  let rec go n =
    if n = 0 then false
    else if n = 1 then true
    else if env (var_of m n) then go (high_of m n)
    else go (low_of m n)
  in
  go f

let any_sat m f =
  if f = 0 then None
  else begin
    let rec go n acc =
      if n = 1 then acc
      else begin
        assert (n <> 0);
        let v = var_of m n in
        if high_of m n <> 0 then go (high_of m n) ((v, true) :: acc)
        else go (low_of m n) ((v, false) :: acc)
      end
    in
    Some (List.rev (go f []))
  end

let sat_count m f ~nvars =
  (* cnt(n) counts assignments of variables strictly below var(n); the level
     of a terminal is [nvars]. *)
  let lvl v = if v = terminal_var then nvars else v in
  let c, v =
    fold m f
      ~const:(fun b -> ((if b then 1.0 else 0.0), terminal_var))
      ~node:(fun v (clo, vlo) (chi, vhi) ->
        let c =
          (clo *. ldexp 1.0 (lvl vlo - v - 1))
          +. (chi *. ldexp 1.0 (lvl vhi - v - 1))
        in
        (c, v))
  in
  c *. ldexp 1.0 (lvl v)

let leq m f g = ite m f g 1 = 1

let is_positive_unate m f ~var =
  leq m (cofactor m f ~var false) (cofactor m f ~var true)

let is_negative_unate m f ~var =
  leq m (cofactor m f ~var true) (cofactor m f ~var false)
