examples/feedback_exposure.ml: Bdd Circuit Feedback Flow Format List Verify Workloads
