examples/pipeline_retiming.ml: Circuit Format List Retime Synth_script Verify Workloads
