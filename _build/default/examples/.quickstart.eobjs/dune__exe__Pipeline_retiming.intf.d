examples/pipeline_retiming.mli:
