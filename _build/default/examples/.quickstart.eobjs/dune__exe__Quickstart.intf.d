examples/quickstart.mli:
