examples/load_enables.mli:
