examples/three_valued.ml: Array Circuit Format List Sim Verify
