examples/baseline_race.ml: Circuit Format List Printf Retime Sec_baseline Synth_script Verify Workloads
