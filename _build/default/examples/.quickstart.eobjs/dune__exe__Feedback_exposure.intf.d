examples/feedback_exposure.mli:
