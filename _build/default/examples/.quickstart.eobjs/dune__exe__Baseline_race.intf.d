examples/baseline_race.mli:
