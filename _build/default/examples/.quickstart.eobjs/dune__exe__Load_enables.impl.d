examples/load_enables.ml: Circuit Edbf Events Format List Printf Synth_script Verify
