examples/quickstart.ml: Array Circuit Format Hashtbl List Option Printf Retime Synth_script Verify
