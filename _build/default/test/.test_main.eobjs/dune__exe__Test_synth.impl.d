test/test_synth.ml: Aig Aig_rewrite Alcotest Array Cec Circuit Comb_view Fanout_pass Gen List Printf Random Rebalance Redundancy Sim Sweep_pass Synth_script
