test/test_blif.ml: Alcotest Array Blif Circuit Eval Gen Hashtbl List Printf Random Sim Verify
