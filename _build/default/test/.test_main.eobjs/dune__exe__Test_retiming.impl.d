test/test_retiming.ml: Alcotest Array Circuit Classes Feedback Gen List Minarea Printf Random Retime Rgraph Sim Verify Vgraph Workloads
