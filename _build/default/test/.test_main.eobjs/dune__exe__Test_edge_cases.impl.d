test/test_edge_cases.ml: Alcotest Array Bdd Cbf Cec Circuit Eval Fanout_pass Gen Hashtbl List Printf Random Retime Rgraph Sweep_pass Verify Vgraph
