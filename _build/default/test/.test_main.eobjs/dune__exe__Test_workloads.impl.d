test/test_workloads.ml: Alcotest Array Circuit Eval Feedback Hashtbl List Netlist_io Printf Random Sim Vgraph Workloads
