test/test_sat.ml: Alcotest List Random Sat
