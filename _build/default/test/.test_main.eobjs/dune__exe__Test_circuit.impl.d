test/test_circuit.ml: Alcotest Array Circuit Eval Gen Hashtbl List Netlist_io Printf Random Sim
