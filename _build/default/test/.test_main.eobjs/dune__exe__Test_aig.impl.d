test/test_aig.ml: Aig Alcotest Array Circuit Eval Gen Hashtbl Int64 List Random Sat
