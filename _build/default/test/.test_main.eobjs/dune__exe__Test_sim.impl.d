test/test_sim.ml: Alcotest Array Circuit Gen List Random Sim
