test/test_feedback.ml: Alcotest Array Bdd Circuit Feedback Gen List Printf Random Sim Vgraph
