test/test_vgraph.ml: Alcotest Array List Printf Random Vgraph
