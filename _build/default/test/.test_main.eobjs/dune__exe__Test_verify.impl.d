test/test_verify.ml: Alcotest Array Circuit Feedback Gen List Printf Random Retime Synth_script Verify Workloads
