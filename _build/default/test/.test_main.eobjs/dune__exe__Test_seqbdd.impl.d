test/test_seqbdd.ml: Alcotest Array Bdd Circuit Gen List Printf Random Retime Sec_baseline Synth_script Transition Verify
