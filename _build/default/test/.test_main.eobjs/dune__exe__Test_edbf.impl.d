test/test_edbf.ml: Alcotest Bdd Cec Circuit Edbf Events Gen List Printf Random Sim Synth_script Verify
