test/test_properties.ml: Aig Array Bdd Cbf Cec Circuit Feedback Gen List Minarea Netlist_io Printf QCheck QCheck_alcotest Random Retime Rgraph Sat Sim Sweep_pass Synth_script Test_bdd Verify Vgraph
