test/test_integration.ml: Alcotest Array Blif Cbf Cec Circuit Eval Feedback Flow Gen Hashtbl Int64 List Netlist_io Printf Random Redundancy Retime Synth_script Verify Workloads
