test/test_cec.ml: Alcotest Array Cec Circuit Eval Gen List Printf Random
