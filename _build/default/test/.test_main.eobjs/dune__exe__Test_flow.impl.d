test/test_flow.ml: Alcotest Circuit Flow Gen List Printf Random Verify Workloads
