test/test_cbf.ml: Alcotest Array Cbf Cec Circuit Eval Feedback Gen List Printf Random Retime Sim String Synth_script Vgraph
