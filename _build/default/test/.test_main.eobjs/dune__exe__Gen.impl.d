test/gen.ml: Array Circuit Hashtbl List Option Printf Random
