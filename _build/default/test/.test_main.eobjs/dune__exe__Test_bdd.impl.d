test/test_bdd.ml: Alcotest Bdd List Random
