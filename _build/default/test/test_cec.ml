(* Combinational equivalence checking: all three engines against
   structure-perturbing rewrites, seeded bugs and brute-force reference. *)

let st = Random.State.make [| 0xCEC |]

let engines = [ ("bdd", Cec.Bdd_engine); ("sat", Cec.Sat_engine); ("sweep", Cec.Sweep_engine) ]

let test_equivalent_rewrites () =
  for i = 1 to 40 do
    let c1 =
      Gen.comb st ~name:(Printf.sprintf "eq%d" i) ~inputs:(2 + Random.State.int st 5)
        ~gates:(5 + Random.State.int st 50)
        ~outputs:(1 + Random.State.int st 3)
    in
    let c2 = Gen.demorganize c1 in
    List.iter
      (fun (nm, e) ->
        match Cec.check ~engine:e c1 c2 with
        | Cec.Equivalent -> ()
        | Cec.Inequivalent _ -> Alcotest.fail (nm ^ ": false inequivalence"))
      engines
  done

let test_seeded_bugs_found () =
  for i = 1 to 40 do
    let c1 =
      Gen.comb st ~name:(Printf.sprintf "bug%d" i) ~inputs:(2 + Random.State.int st 4)
        ~gates:(5 + Random.State.int st 40)
        ~outputs:(1 + Random.State.int st 3)
    in
    let c2 = Gen.negate_one_output (Gen.demorganize c1) in
    List.iter
      (fun (nm, e) ->
        match Cec.check ~engine:e c1 c2 with
        | Cec.Equivalent -> Alcotest.fail (nm ^ ": missed seeded bug")
        | Cec.Inequivalent cex ->
            Alcotest.(check bool) (nm ^ ": cex replays") true
              (Cec.counterexample_is_valid c1 c2 cex))
      engines
  done

let test_engines_agree () =
  (* random pairs (often inequivalent): all engines agree on the verdict *)
  for i = 1 to 30 do
    let n_in = 2 + Random.State.int st 3 in
    let c1 = Gen.comb st ~name:(Printf.sprintf "p%da" i) ~inputs:n_in ~gates:15 ~outputs:2 in
    let c2 = Gen.comb st ~name:(Printf.sprintf "p%db" i) ~inputs:n_in ~gates:15 ~outputs:2 in
    let verdicts =
      List.map
        (fun (_, e) ->
          match Cec.check ~engine:e c1 c2 with Cec.Equivalent -> true | Cec.Inequivalent _ -> false)
        engines
    in
    Alcotest.(check bool) "engines agree" true
      (List.for_all (fun v -> v = List.hd verdicts) verdicts)
  done

let test_vs_brute_force () =
  for i = 1 to 30 do
    let n_in = 2 + Random.State.int st 3 in
    let c1 = Gen.comb st ~name:(Printf.sprintf "b%da" i) ~inputs:n_in ~gates:12 ~outputs:1 in
    let c2 = Gen.comb st ~name:(Printf.sprintf "b%db" i) ~inputs:n_in ~gates:12 ~outputs:1 in
    (* brute force over the union input space; inputs matched by name *)
    let names =
      List.sort_uniq compare
        (List.map (Circuit.signal_name c1) (Circuit.inputs c1)
        @ List.map (Circuit.signal_name c2) (Circuit.inputs c2))
    in
    let nv = List.length names in
    let equal = ref true in
    for m = 0 to (1 lsl nv) - 1 do
      let env name =
        let rec idx i = function
          | [] -> false
          | n :: _ when n = name -> m land (1 lsl i) <> 0
          | _ :: tl -> idx (i + 1) tl
        in
        idx 0 names
      in
      let outs c =
        let source s = env (Circuit.signal_name c s) in
        let v = Eval.comb_eval c ~source in
        List.map (fun o -> v.(o)) (Circuit.outputs c)
      in
      if outs c1 <> outs c2 then equal := false
    done;
    List.iter
      (fun (nm, e) ->
        let got =
          match Cec.check ~engine:e c1 c2 with Cec.Equivalent -> true | Cec.Inequivalent _ -> false
        in
        Alcotest.(check bool) (nm ^ " matches brute force") !equal got)
      engines
  done

let test_constants () =
  let c1 = Circuit.create "k1" in
  ignore (Circuit.add_input c1 "x");
  Circuit.mark_output c1 (Circuit.const_true c1);
  Circuit.check c1;
  let c2 = Circuit.create "k2" in
  let x = Circuit.add_input c2 "x" in
  Circuit.mark_output c2 (Circuit.add_gate c2 Or [ x; Circuit.add_gate c2 Not [ x ] ]);
  Circuit.check c2;
  List.iter
    (fun (nm, e) ->
      match Cec.check ~engine:e c1 c2 with
      | Cec.Equivalent -> ()
      | Cec.Inequivalent _ -> Alcotest.fail (nm ^ ": tautology not proven"))
    engines

let test_rejects_latches () =
  let c = Circuit.create "seq" in
  let d = Circuit.add_input c "d" in
  Circuit.mark_output c (Circuit.add_latch c ~data:d ());
  Circuit.check c;
  try
    ignore (Cec.check c c);
    Alcotest.fail "latch accepted"
  with Invalid_argument _ -> ()

let test_output_count_mismatch () =
  let c1 = Gen.comb st ~name:"o1" ~inputs:2 ~gates:5 ~outputs:1 in
  let c2 = Gen.comb st ~name:"o2" ~inputs:2 ~gates:5 ~outputs:2 in
  try
    ignore (Cec.check c1 c2);
    Alcotest.fail "output mismatch accepted"
  with Invalid_argument _ -> ()

let test_disjoint_inputs_free () =
  (* an input present in only one circuit is a free variable: f(x) vs
     g(x,y) must compare over x AND y *)
  let c1 = Circuit.create "d1" in
  let x = Circuit.add_input c1 "x" in
  Circuit.mark_output c1 (Circuit.add_gate c1 Buf [ x ]);
  Circuit.check c1;
  let c2 = Circuit.create "d2" in
  let x2 = Circuit.add_input c2 "x" in
  let y2 = Circuit.add_input c2 "y" in
  Circuit.mark_output c2 (Circuit.add_gate c2 And [ x2; y2 ]);
  Circuit.check c2;
  List.iter
    (fun (nm, e) ->
      match Cec.check ~engine:e c1 c2 with
      | Cec.Equivalent -> Alcotest.fail (nm ^ ": y dependence missed")
      | Cec.Inequivalent cex ->
          Alcotest.(check bool) (nm ^ " valid cex") true
            (Cec.counterexample_is_valid c1 c2 cex))
    engines

let test_sweep_on_identical_structures () =
  (* sweeping a miter of two copies should need few/no SAT calls on the
     final miter (internal equivalences collapse it) *)
  let c1 = Gen.comb st ~name:"same" ~inputs:4 ~gates:60 ~outputs:2 in
  let c2 = Gen.demorganize c1 in
  (match Cec.check ~engine:Cec.Sweep_engine c1 c2 with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "sweep failed");
  Alcotest.(check bool) "sat calls recorded" true (Cec.stats_last_sat_calls () >= 0)

let suite =
  [
    Alcotest.test_case "equivalent rewrites proven" `Quick test_equivalent_rewrites;
    Alcotest.test_case "seeded bugs found + cex valid" `Quick test_seeded_bugs_found;
    Alcotest.test_case "engines agree" `Quick test_engines_agree;
    Alcotest.test_case "matches brute force" `Quick test_vs_brute_force;
    Alcotest.test_case "constants / tautologies" `Quick test_constants;
    Alcotest.test_case "rejects latches" `Quick test_rejects_latches;
    Alcotest.test_case "output count mismatch" `Quick test_output_count_mismatch;
    Alcotest.test_case "union input space" `Quick test_disjoint_inputs_free;
    Alcotest.test_case "sweep collapses identical logic" `Quick test_sweep_on_identical_structures;
  ]
