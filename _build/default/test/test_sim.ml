(* Simulation semantics: 2-valued stepping, conservative 3-valued X
   propagation, and the exact 3-valued oracle of Definition 1. *)

let st = Random.State.make [| 0x51A |]

let test_step_latch_semantics () =
  (* q(t+1) = d(t); output reads the pre-update state *)
  let c = Circuit.create "dff" in
  let d = Circuit.add_input c "d" in
  let q = Circuit.add_latch c ~data:d () in
  Circuit.mark_output c q;
  Circuit.check c;
  let trace = Sim.run c ~init:[| false |] ~inputs:[ [| true |]; [| false |]; [| true |] ] in
  Alcotest.(check (list (list bool)))
    "shift by one"
    [ [ false ]; [ true ]; [ false ] ]
    (List.map Array.to_list trace)

let test_enabled_latch_holds () =
  let c = Circuit.create "en" in
  let d = Circuit.add_input c "d" in
  let e = Circuit.add_input c "e" in
  let q = Circuit.add_latch c ~enable:e ~data:d () in
  Circuit.mark_output c q;
  Circuit.check c;
  let inputs =
    [ [| true; true |]; [| false; false |]; [| false; false |]; [| false; true |]; [| true; false |] ]
  in
  (* init q=false; load 1; hold; hold; load 0; hold *)
  let trace = Sim.run c ~init:[| false |] ~inputs in
  Alcotest.(check (list (list bool)))
    "enable gating"
    [ [ false ]; [ true ]; [ true ]; [ true ]; [ false ] ]
    (List.map Array.to_list trace)

let test_run_3v_conservative () =
  (* 3-valued simulation may say X but never gives a wrong defined value *)
  for _ = 1 to 30 do
    let c =
      Gen.acyclic st ~name:"c3v" ~inputs:3 ~gates:25 ~latches:4 ~outputs:2 ~enables:true
    in
    let inputs = Gen.random_inputs st c ~cycles:8 in
    let t3 = Sim.run_3v c ~inputs in
    let nl = Circuit.latch_count c in
    for powerup = 0 to (1 lsl nl) - 1 do
      let init = Array.init nl (fun i -> powerup land (1 lsl i) <> 0) in
      let t2 = Sim.run c ~init ~inputs in
      List.iter2
        (fun o3 o2 ->
          Array.iteri
            (fun i v3 ->
              match v3 with
              | Sim.X -> ()
              | Sim.T -> Alcotest.(check bool) "3v sound (T)" true o2.(i)
              | Sim.F -> Alcotest.(check bool) "3v sound (F)" false o2.(i))
            o3)
        t3 t2
    done
  done

let test_exact_refines_3v () =
  (* exact 3-valued is at least as defined as conservative 3-valued *)
  for _ = 1 to 30 do
    let c =
      Gen.acyclic st ~name:"cx" ~inputs:3 ~gates:20 ~latches:4 ~outputs:2 ~enables:false
    in
    let inputs = Gen.random_inputs st c ~cycles:6 in
    let t3 = Sim.run_3v c ~inputs in
    let tx = Sim.run_exact c ~inputs in
    List.iter2
      (fun o3 ox ->
        Array.iteri
          (fun i v3 ->
            match (v3, ox.(i)) with
            | Sim.X, _ -> () (* exact may be more defined *)
            | v, w -> Alcotest.(check bool) "agrees when 3v defined" true (Sim.tv_equal v w))
          o3)
      t3 tx
  done

let test_exact_definition () =
  (* run_exact output = value iff all power-up states agree *)
  for _ = 1 to 20 do
    let c =
      Gen.acyclic st ~name:"cd" ~inputs:2 ~gates:15 ~latches:3 ~outputs:1 ~enables:false
    in
    let inputs = Gen.random_inputs st c ~cycles:5 in
    let tx = Sim.run_exact c ~inputs in
    let nl = Circuit.latch_count c in
    let traces =
      List.init (1 lsl nl) (fun m ->
          Sim.run c ~init:(Array.init nl (fun i -> m land (1 lsl i) <> 0)) ~inputs)
    in
    List.iteri
      (fun t ox ->
        Array.iteri
          (fun i v ->
            let values = List.map (fun tr -> (List.nth tr t).(i)) traces in
            let all_same = List.for_all (fun b -> b = List.hd values) values in
            match v with
            | Sim.X -> Alcotest.(check bool) "X iff disagreement" false all_same
            | Sim.T | Sim.F ->
                Alcotest.(check bool) "defined iff agreement" true all_same;
                Alcotest.(check bool) "value correct" true
                  (Sim.tv_equal v (if List.hd values then Sim.T else Sim.F)))
          ox)
      tx
  done

(* Fig. 1: circuits that are exact-3-valued equivalent but NOT 3-valued
   equivalent (conservative X correlation loss).  Circuit (a): o = q XOR q
   (always 0 exactly, X under naive 3-valued sim when q is X).  Circuit (b):
   o = 0. *)
let fig1_a () =
  let c = Circuit.create "fig1a" in
  let d = Circuit.add_input c "d" in
  let q = Circuit.add_latch c ~data:d () in
  Circuit.mark_output c (Circuit.add_gate c Xor [ q; q ]);
  Circuit.check c;
  c

let fig1_b () =
  let c = Circuit.create "fig1b" in
  let _d = Circuit.add_input c "d" in
  Circuit.mark_output c (Circuit.const_false c);
  Circuit.check c;
  c

let test_fig1 () =
  let a = fig1_a () and b = fig1_b () in
  let inputs = [ [| true |]; [| false |] ] in
  (* conservative 3-valued: circuit (a) reports X in cycle 0 *)
  let t3a = Sim.run_3v a ~inputs in
  Alcotest.(check bool) "naive 3v sees X" true (Sim.tv_equal (List.hd t3a).(0) Sim.X);
  (* exact semantics: both are constant 0 *)
  Alcotest.(check bool) "exactly equivalent" true
    (Sim.equivalent_exact a b ~input_seqs:[ inputs ] = None)

let test_equivalent_exact_detects () =
  let a = fig1_a () in
  let c = Circuit.create "one" in
  let _d = Circuit.add_input c "d" in
  Circuit.mark_output c (Circuit.const_true c);
  Circuit.check c;
  let inputs = [ [| true |] ] in
  match Sim.equivalent_exact a c ~input_seqs:[ inputs ] with
  | None -> Alcotest.fail "missed inequivalence"
  | Some (_, t1, t2) ->
      Alcotest.(check bool) "traces differ" false
        (List.for_all2 (fun x y -> Array.for_all2 Sim.tv_equal x y) t1 t2)

let test_all_input_seqs () =
  let c = Circuit.create "ai" in
  ignore (Circuit.add_input c "a");
  ignore (Circuit.add_input c "b");
  Circuit.mark_output c (Circuit.const_true c);
  Circuit.check c;
  let seqs = Sim.all_input_seqs c ~depth:2 in
  Alcotest.(check int) "4^2 sequences" 16 (List.length seqs);
  List.iter (fun s -> Alcotest.(check int) "length" 2 (List.length s)) seqs

let test_latch_limit () =
  let c = Gen.acyclic st ~name:"big" ~inputs:2 ~gates:10 ~latches:20 ~outputs:1 ~enables:false in
  try
    ignore (Sim.run_exact ~max_latches:4 c ~inputs:[ [| true; true |] ]);
    Alcotest.fail "limit not enforced"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "latch step semantics" `Quick test_step_latch_semantics;
    Alcotest.test_case "enabled latch holds" `Quick test_enabled_latch_holds;
    Alcotest.test_case "3-valued is conservative" `Quick test_run_3v_conservative;
    Alcotest.test_case "exact refines 3-valued" `Quick test_exact_refines_3v;
    Alcotest.test_case "exact matches Definition 1" `Quick test_exact_definition;
    Alcotest.test_case "Fig. 1 X-correlation" `Quick test_fig1;
    Alcotest.test_case "inequivalence detection" `Quick test_equivalent_exact_detects;
    Alcotest.test_case "all_input_seqs" `Quick test_all_input_seqs;
    Alcotest.test_case "exact latch limit" `Quick test_latch_limit;
  ]
