(* Netlist data structure, validation, topo order, I/O round-trips. *)

let st = Random.State.make [| 0xC1C |]

let test_builder_basic () =
  let c = Circuit.create "adder_bit" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  let cin = Circuit.add_input c "cin" in
  let s1 = Circuit.add_gate c Xor [ a; b ] in
  let sum = Circuit.add_gate c Xor [ s1; cin ] in
  let c1 = Circuit.add_gate c And [ a; b ] in
  let c2 = Circuit.add_gate c And [ s1; cin ] in
  let cout = Circuit.add_gate c Or [ c1; c2 ] in
  Circuit.mark_output c sum;
  Circuit.mark_output c cout;
  Circuit.check c;
  Alcotest.(check int) "inputs" 3 (List.length (Circuit.inputs c));
  Alcotest.(check int) "outputs" 2 (List.length (Circuit.outputs c));
  Alcotest.(check int) "area" 5 (Circuit.area c);
  Alcotest.(check int) "delay" 3 (Circuit.delay c);
  Alcotest.(check int) "latches" 0 (Circuit.latch_count c)

let test_undriven_rejected () =
  let c = Circuit.create "bad" in
  let x = Circuit.declare c ~name:"x" () in
  Circuit.mark_output c x;
  Alcotest.check_raises "undriven"
    (Invalid_argument "Circuit.check: undriven signal x") (fun () -> Circuit.check c)

let test_comb_cycle_rejected () =
  let c = Circuit.create "cyc" in
  let x = Circuit.declare c ~name:"x" () in
  let y = Circuit.add_gate c Not [ x ] in
  Circuit.set_gate c x Not [ y ];
  Circuit.mark_output c x;
  (try
     Circuit.check c;
     Alcotest.fail "cycle accepted"
   with Invalid_argument _ -> ())

let test_latch_breaks_cycle () =
  let c = Circuit.create "lcyc" in
  let q = Circuit.declare c ~name:"q" () in
  let nq = Circuit.add_gate c Not [ q ] in
  Circuit.set_latch c q ~data:nq ();
  Circuit.mark_output c q;
  Circuit.check c;
  Alcotest.(check int) "one latch" 1 (Circuit.latch_count c)

let test_arity_checks () =
  let c = Circuit.create "ar" in
  let a = Circuit.add_input c "a" in
  Alcotest.check_raises "not arity" (Invalid_argument "Circuit.set_gate: bad arity for not")
    (fun () -> ignore (Circuit.add_gate c Not [ a; a ]));
  Alcotest.check_raises "mux arity" (Invalid_argument "Circuit.set_gate: bad arity for mux")
    (fun () -> ignore (Circuit.add_gate c Mux [ a; a ]))

let test_double_drive_rejected () =
  let c = Circuit.create "dd" in
  let a = Circuit.add_input c "a" in
  let g = Circuit.add_gate c Not [ a ] in
  (try
     Circuit.set_gate c g Buf [ a ];
     Alcotest.fail "double drive accepted"
   with Invalid_argument _ -> ())

let test_names () =
  let c = Circuit.create "nm" in
  let a = Circuit.add_input c "a" in
  Alcotest.(check (option int)) "find" (Some a) (Circuit.find_signal c "a");
  Alcotest.(check string) "name" "a" (Circuit.signal_name c a);
  (try
     ignore (Circuit.add_input c "a");
     Alcotest.fail "duplicate name accepted"
   with Invalid_argument _ -> ())

let test_topo_respects_fanins () =
  for _ = 1 to 30 do
    let c =
      Gen.acyclic st ~name:"t" ~inputs:3 ~gates:40 ~latches:5 ~outputs:2 ~enables:false
    in
    let order = Circuit.comb_topo c in
    let pos = Hashtbl.create 64 in
    List.iteri (fun i s -> Hashtbl.replace pos s i) order;
    List.iter
      (fun s ->
        match Circuit.driver c s with
        | Gate (_, fs) ->
            Array.iter
              (fun f ->
                match Circuit.driver c f with
                | Gate _ ->
                    Alcotest.(check bool) "fanin first" true
                      (Hashtbl.find pos f < Hashtbl.find pos s)
                | Undriven | Input | Latch _ -> ())
              fs
        | Undriven | Input | Latch _ -> ())
      order
  done

let test_fanout_counts () =
  let c = Circuit.create "fo" in
  let a = Circuit.add_input c "a" in
  let g1 = Circuit.add_gate c Not [ a ] in
  let g2 = Circuit.add_gate c And [ a; g1 ] in
  Circuit.mark_output c g2;
  Circuit.mark_output c a;
  let counts = Circuit.fanout_counts c in
  Alcotest.(check int) "a used 3x (2 gates + output)" 3 counts.(a);
  Alcotest.(check int) "g1 used once" 1 counts.(g1);
  Alcotest.(check int) "g2 output only" 1 counts.(g2)

let test_cone () =
  let c = Circuit.create "cone" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  let q = Circuit.add_latch c ~data:a () in
  let g1 = Circuit.add_gate c And [ q; b ] in
  let g2 = Circuit.add_gate c Not [ a ] in
  Circuit.mark_output c g1;
  let marked = Circuit.cone c [ g1 ] in
  Alcotest.(check bool) "g1 in" true marked.(g1);
  Alcotest.(check bool) "latch in (as leaf)" true marked.(q);
  Alcotest.(check bool) "a not reached through latch" false marked.(a);
  Alcotest.(check bool) "g2 out" false marked.(g2);
  let seq = Circuit.seq_cone c [ g1 ] in
  Alcotest.(check bool) "seq cone through latch" true seq.(a)

let test_extract () =
  let c = Circuit.create "xt" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  let g1 = Circuit.add_gate c Not [ a ] in
  let dead = Circuit.add_gate c And [ a; b ] in
  ignore dead;
  Circuit.mark_output c g1;
  let nc, _map = Circuit.extract c ~keep_outputs:[ g1 ] in
  Circuit.check nc;
  Alcotest.(check int) "only live gate kept" 1 (Circuit.area nc);
  Alcotest.(check int) "only used input kept" 1 (List.length (Circuit.inputs nc))

let test_netlist_roundtrip () =
  for i = 1 to 25 do
    let c =
      Gen.acyclic st
        ~name:(Printf.sprintf "rt%d" i)
        ~inputs:(1 + Random.State.int st 4)
        ~gates:(5 + Random.State.int st 40)
        ~latches:(Random.State.int st 6)
        ~outputs:(1 + Random.State.int st 3)
        ~enables:(i mod 2 = 0)
    in
    let text = Netlist_io.to_string c in
    let c2 = Netlist_io.parse text in
    Alcotest.(check string) "name" (Circuit.name c) (Circuit.name c2);
    Alcotest.(check int) "inputs" (List.length (Circuit.inputs c))
      (List.length (Circuit.inputs c2));
    Alcotest.(check int) "latches" (Circuit.latch_count c) (Circuit.latch_count c2);
    Alcotest.(check int) "area" (Circuit.area c) (Circuit.area c2);
    (* round-tripping again preserves the interface exactly *)
    let c3 = Netlist_io.parse (Netlist_io.to_string c2) in
    Alcotest.(check (list string)) "output names stable"
      (List.map (Circuit.signal_name c2) (Circuit.outputs c2))
      (List.map (Circuit.signal_name c3) (Circuit.outputs c3));
    Alcotest.(check int) "area stable" (Circuit.area c2) (Circuit.area c3);
    (* behavioural identity on random runs (match power-up by latch name;
       the parser may renumber) *)
    let inputs = Gen.random_inputs st c ~cycles:10 in
    let names1 = List.map (Circuit.signal_name c) (Circuit.latches c) in
    let names2 = List.map (Circuit.signal_name c2) (Circuit.latches c2) in
    let init1 = Array.init (List.length names1) (fun _ -> Random.State.bool st) in
    let init2 =
      Array.of_list
        (List.map
           (fun n ->
             let rec find i = function
               | [] -> false
               | m :: _ when m = n -> init1.(i)
               | _ :: tl -> find (i + 1) tl
             in
             find 0 names1)
           names2)
    in
    let t1 = Sim.run c ~init:init1 ~inputs in
    let t2 = Sim.run c2 ~init:init2 ~inputs in
    Alcotest.(check bool) "same behaviour" true (t1 = t2)
  done

let test_parse_errors () =
  (try
     ignore (Netlist_io.parse ".model m\n.gate frobnicate x y\n.end");
     Alcotest.fail "bad gate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Netlist_io.parse ".model m\nnonsense line\n.end");
    Alcotest.fail "bad line accepted"
  with Invalid_argument _ -> ()

let test_gate_eval_semantics () =
  let vs2 = [ [| false; false |]; [| false; true |]; [| true; false |]; [| true; true |] ] in
  List.iter
    (fun vs ->
      let a = vs.(0) and b = vs.(1) in
      Alcotest.(check bool) "and" (a && b) (Eval.gate_eval And vs);
      Alcotest.(check bool) "or" (a || b) (Eval.gate_eval Or vs);
      Alcotest.(check bool) "nand" (not (a && b)) (Eval.gate_eval Nand vs);
      Alcotest.(check bool) "nor" (not (a || b)) (Eval.gate_eval Nor vs);
      Alcotest.(check bool) "xor" (a <> b) (Eval.gate_eval Xor vs);
      Alcotest.(check bool) "xnor" (a = b) (Eval.gate_eval Xnor vs))
    vs2;
  Alcotest.(check bool) "mux t" true (Eval.gate_eval Mux [| true; true; false |]);
  Alcotest.(check bool) "mux e" false (Eval.gate_eval Mux [| false; true; false |]);
  Alcotest.(check bool) "const" true (Eval.gate_eval (Const true) [||]);
  (* n-ary parity *)
  Alcotest.(check bool) "xor3" true (Eval.gate_eval Xor [| true; true; true |])

let suite =
  [
    Alcotest.test_case "builder basics" `Quick test_builder_basic;
    Alcotest.test_case "undriven rejected" `Quick test_undriven_rejected;
    Alcotest.test_case "combinational cycle rejected" `Quick test_comb_cycle_rejected;
    Alcotest.test_case "latch breaks cycle" `Quick test_latch_breaks_cycle;
    Alcotest.test_case "arity checks" `Quick test_arity_checks;
    Alcotest.test_case "double drive rejected" `Quick test_double_drive_rejected;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "topo respects fanins" `Quick test_topo_respects_fanins;
    Alcotest.test_case "fanout counts" `Quick test_fanout_counts;
    Alcotest.test_case "cone vs seq_cone" `Quick test_cone;
    Alcotest.test_case "extract" `Quick test_extract;
    Alcotest.test_case "netlist IO roundtrip" `Quick test_netlist_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "gate semantics" `Quick test_gate_eval_semantics;
  ]
