(* Section 6: unateness, the Lemma 6.1 decomposition, Lemma 6.2 canonical
   disjoint-support choice, exposure planning and plan application. *)

let st = Random.State.make [| 0xFB |]

(* conditional-update register: q' = c ? d : q *)
let cond_update_circuit () =
  let c = Circuit.create "cond" in
  let cc = Circuit.add_input c "c" in
  let d = Circuit.add_input c "d" in
  let q = Circuit.declare c ~name:"q" () in
  let next = Circuit.add_gate c Mux [ cc; d; q ] in
  Circuit.set_latch c q ~data:next ();
  Circuit.mark_output c q;
  Circuit.check c;
  c

(* toggle register: q' = c ? ~q : q *)
let toggle_circuit () =
  let c = Circuit.create "tog" in
  let cc = Circuit.add_input c "c" in
  let q = Circuit.declare c ~name:"q" () in
  let nq = Circuit.add_gate c Not [ q ] in
  let next = Circuit.add_gate c Mux [ cc; nq; q ] in
  Circuit.set_latch c q ~data:next ();
  Circuit.mark_output c q;
  Circuit.check c;
  c

let test_analyze_classifies () =
  let c = cond_update_circuit () in
  (match Feedback.analyze c with
  | [ a ] ->
      Alcotest.(check bool) "self feedback" true a.Feedback.self_feedback;
      Alcotest.(check bool) "unate" true a.Feedback.positive_unate
  | _ -> Alcotest.fail "one latch expected");
  let t = toggle_circuit () in
  match Feedback.analyze t with
  | [ a ] ->
      Alcotest.(check bool) "self feedback" true a.Feedback.self_feedback;
      Alcotest.(check bool) "not unate" false a.Feedback.positive_unate
  | _ -> Alcotest.fail "one latch expected"

let test_decompose_identity () =
  (* Lemma 6.1: for random positive-unate F, F = e·d + ē·x *)
  let man = Bdd.man () in
  let x = Bdd.var man 0 in
  for _ = 1 to 60 do
    (* build a positive-unate-in-x function: g + x·h with g,h over others *)
    let rand_over vars =
      List.fold_left
        (fun acc v ->
          let lit = if Random.State.bool st then v else Bdd.not_ man v in
          if Random.State.bool st then Bdd.and_ man acc lit else Bdd.or_ man acc lit)
        (if Random.State.bool st then Bdd.one man else Bdd.zero man)
        vars
    in
    let others = List.init 3 (fun i -> Bdd.var man (i + 1)) in
    let g = rand_over others and h = rand_over others in
    let f = Bdd.or_ man g (Bdd.and_ man x h) in
    Alcotest.(check bool) "constructed unate" true (Bdd.is_positive_unate man f ~var:0);
    List.iter
      (fun dchoice ->
        match Feedback.decompose man f ~x:0 ~dchoice with
        | None -> Alcotest.fail "unate function not decomposed"
        | Some (e, d) ->
            let recomposed =
              Bdd.or_ man (Bdd.and_ man e d) (Bdd.and_ man (Bdd.not_ man e) x)
            in
            Alcotest.(check bool) "F = e·d + ē·x" true (Bdd.equal f recomposed);
            Alcotest.(check bool) "e independent of x" false (Bdd.depends_on man e 0);
            Alcotest.(check bool) "d independent of x" false (Bdd.depends_on man d 0);
            (* interval: F0 <= d <= F1 *)
            let f0 = Bdd.cofactor man f ~var:0 false in
            let f1 = Bdd.cofactor man f ~var:0 true in
            Alcotest.(check bool) "d >= F0" true (Bdd.leq man f0 d);
            Alcotest.(check bool) "d <= F1" true (Bdd.leq man d f1))
      [ Feedback.D_low; Feedback.D_disjoint ]
  done

let test_decompose_e_unique () =
  (* the enable is forced: ē = F1·¬F0 regardless of dchoice *)
  let man = Bdd.man () in
  let x = Bdd.var man 0 and a = Bdd.var man 1 and b = Bdd.var man 2 in
  let f = Bdd.or_ man (Bdd.and_ man a b) (Bdd.and_ man x a) in
  match
    ( Feedback.decompose man f ~x:0 ~dchoice:Feedback.D_low,
      Feedback.decompose man f ~x:0 ~dchoice:Feedback.D_disjoint )
  with
  | Some (e1, _), Some (e2, _) ->
      Alcotest.(check bool) "e unique" true (Bdd.equal e1 e2);
      (* ē = F1·¬F0 *)
      let f0 = Bdd.cofactor man f ~var:0 false in
      let f1 = Bdd.cofactor man f ~var:0 true in
      let expected_ne = Bdd.and_ man f1 (Bdd.not_ man f0) in
      Alcotest.(check bool) "ē formula" true (Bdd.equal (Bdd.not_ man e1) expected_ne)
  | _ -> Alcotest.fail "decomposition failed"

let test_decompose_rejects_non_unate () =
  let man = Bdd.man () in
  let x = Bdd.var man 0 and a = Bdd.var man 1 in
  let f = Bdd.xor_ man x a in
  Alcotest.(check bool) "toggle rejected" true
    (Feedback.decompose man f ~x:0 ~dchoice:Feedback.D_low = None)

let test_disjoint_support_choice () =
  (* conditional update F = c·d + ~c·x: e = c, D_disjoint should find d
     with support {d}, disjoint from e's support {c} *)
  let man = Bdd.man () in
  let x = Bdd.var man 0 and c = Bdd.var man 1 and d = Bdd.var man 2 in
  let f = Bdd.or_ man (Bdd.and_ man c d) (Bdd.and_ man (Bdd.not_ man c) x) in
  match Feedback.decompose man f ~x:0 ~dchoice:Feedback.D_disjoint with
  | None -> Alcotest.fail "not decomposed"
  | Some (e, dd) ->
      Alcotest.(check (list int)) "e = c" [ 1 ] (Bdd.support man e);
      Alcotest.(check (list int)) "d disjoint from e" [ 2 ] (Bdd.support man dd)

let test_plan_structural_exact () =
  (* circuits built from k self-loop registers expose exactly k *)
  for k = 1 to 5 do
    let c = Circuit.create (Printf.sprintf "pk%d" k) in
    let a = Circuit.add_input c "a" in
    for i = 1 to k do
      let q = Circuit.declare c ~name:(Printf.sprintf "q%d" i) () in
      let next = Circuit.add_gate c Mux [ a; Circuit.add_gate c Not [ q ]; q ] in
      Circuit.set_latch c q ~data:next ();
      Circuit.mark_output c q
    done;
    (* plus an acyclic latch *)
    let p = Circuit.add_latch c ~data:a () in
    Circuit.mark_output c p;
    Circuit.check c;
    let plan = Feedback.plan_structural c in
    Alcotest.(check int) "exactly the self-loops" k (List.length plan.Feedback.exposed)
  done

let test_plan_functional_converts () =
  (* conditional registers convert, toggles stay exposed *)
  let c = Circuit.create "mixfb" in
  let cc = Circuit.add_input c "c" in
  let d = Circuit.add_input c "d" in
  let qc = Circuit.declare c ~name:"qc" () in
  Circuit.set_latch c qc ~data:(Circuit.add_gate c Mux [ cc; d; qc ]) ();
  let qt = Circuit.declare c ~name:"qt" () in
  Circuit.set_latch c qt
    ~data:(Circuit.add_gate c Mux [ cc; Circuit.add_gate c Not [ qt ]; qt ])
    ();
  Circuit.mark_output c qc;
  Circuit.mark_output c qt;
  Circuit.check c;
  let plan = Feedback.plan_functional c in
  Alcotest.(check int) "one exposed" 1 (List.length plan.Feedback.exposed);
  Alcotest.(check int) "one converted" 1 (List.length plan.Feedback.converted);
  Alcotest.(check string) "toggle exposed" "qt"
    (Circuit.signal_name c (List.hd plan.Feedback.exposed));
  Alcotest.(check string) "conditional converted" "qc"
    (Circuit.signal_name c (List.hd plan.Feedback.converted))

let test_apply_plan_preserves () =
  (* converting a conditional register to a load-enabled latch preserves the
     sequential behaviour state-for-state *)
  for _ = 1 to 20 do
    let c = Circuit.create "ap" in
    let nin = 3 in
    let ins = List.init nin (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i)) in
    let q = Circuit.declare c ~name:"q" () in
    let pool = q :: ins in
    let pick () = List.nth pool (Random.State.int st (List.length pool)) in
    let cond = Circuit.add_gate c And [ pick (); pick () ] in
    let data = Circuit.add_gate c Or [ pick (); pick () ] in
    (* ensure cond/data do not read q (the enable/data must be independent
       of the latch: condition 1 of Section 6) *)
    let cond = Circuit.add_gate c And [ cond; Circuit.add_gate c Or ins ] in
    ignore cond;
    let cond2 = Circuit.add_gate c And [ List.nth ins 0; List.nth ins 1 ] in
    let data2 = Circuit.add_gate c Xor [ List.nth ins 1; List.nth ins 2 ] in
    Circuit.set_latch c q ~data:(Circuit.add_gate c Mux [ cond2; data2; q ]) ();
    Circuit.mark_output c q;
    ignore data;
    Circuit.check c;
    let plan = Feedback.plan_functional c in
    Alcotest.(check int) "converted" 1 (List.length plan.Feedback.converted);
    let o = Feedback.apply_plan c plan in
    Circuit.check o;
    (* the converted latch is load-enabled now *)
    (match Circuit.find_signal o "q" with
    | Some s -> (
        match Circuit.driver o s with
        | Latch { enable = Some _; _ } -> ()
        | _ -> Alcotest.fail "q not converted to enabled latch")
    | None -> Alcotest.fail "q vanished");
    (* state-for-state behaviour *)
    let seq = Gen.random_inputs st c ~cycles:20 in
    for init = 0 to 1 do
      let t1 = Sim.run c ~init:[| init = 1 |] ~inputs:seq in
      let t2 = Sim.run o ~init:[| init = 1 |] ~inputs:seq in
      if t1 <> t2 then Alcotest.fail "conversion changed behaviour"
    done
  done

let test_latch_graph_edges () =
  let c = Circuit.create "lg" in
  let a = Circuit.add_input c "a" in
  let q1 = Circuit.add_latch c ~data:a () in
  let g = Circuit.add_gate c Not [ q1 ] in
  let q2 = Circuit.add_latch c ~data:g () in
  Circuit.mark_output c q2;
  Circuit.check c;
  let g, latches = Feedback.latch_graph c in
  Alcotest.(check int) "two nodes" 2 (Vgraph.Digraph.node_count g);
  Alcotest.(check int) "one edge" 1 (Vgraph.Digraph.edge_count g);
  let e = Vgraph.Digraph.edge g 0 in
  Alcotest.(check bool) "q1 -> q2" true
    (latches.(e.Vgraph.Digraph.src) = q1 && latches.(e.Vgraph.Digraph.dst) = q2)

let test_enable_cone_counts () =
  (* the latch graph must include dependencies through enables *)
  let c = Circuit.create "lge" in
  let a = Circuit.add_input c "a" in
  let q1 = Circuit.add_latch c ~data:a () in
  let q2 = Circuit.add_latch c ~enable:q1 ~data:a () in
  Circuit.mark_output c q2;
  Circuit.check c;
  let g, _ = Feedback.latch_graph c in
  Alcotest.(check int) "enable edge present" 1 (Vgraph.Digraph.edge_count g)

let test_node_budget () =
  (* a wide xor chain blows the node budget and is conservatively rejected *)
  let c = Circuit.create "wide" in
  let ins = List.init 40 (fun i -> Circuit.add_input c (Printf.sprintf "i%d" i)) in
  let q = Circuit.declare c ~name:"q" () in
  (* deep mixing feeding the register *)
  let acc = List.fold_left (fun acc x -> Circuit.add_gate c Xor [ acc; x ]) q ins in
  Circuit.set_latch c q ~data:acc ();
  Circuit.mark_output c q;
  Circuit.check c;
  try
    ignore (Feedback.next_state_function ~node_limit:10 c q);
    Alcotest.fail "budget not enforced"
  with Feedback.Node_budget_exceeded -> ()

let suite =
  [
    Alcotest.test_case "analyze classifies latches" `Quick test_analyze_classifies;
    Alcotest.test_case "Lemma 6.1 identity" `Quick test_decompose_identity;
    Alcotest.test_case "enable uniqueness" `Quick test_decompose_e_unique;
    Alcotest.test_case "non-unate rejected" `Quick test_decompose_rejects_non_unate;
    Alcotest.test_case "Lemma 6.2 disjoint support" `Quick test_disjoint_support_choice;
    Alcotest.test_case "structural plan exact" `Quick test_plan_structural_exact;
    Alcotest.test_case "functional plan converts" `Quick test_plan_functional_converts;
    Alcotest.test_case "apply_plan preserves behaviour" `Quick test_apply_plan_preserves;
    Alcotest.test_case "latch graph edges" `Quick test_latch_graph_edges;
    Alcotest.test_case "latch graph through enables" `Quick test_enable_cone_counts;
    Alcotest.test_case "BDD node budget" `Quick test_node_budget;
  ]
