(* BDD package: semantics checked against brute-force truth tables. *)

let st = Random.State.make [| 0xB0D |]

(* Random Boolean expression over [n] variables. *)
type expr =
  | V of int
  | Const of bool
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Ite of expr * expr * expr

let rec random_expr n depth =
  if depth = 0 || Random.State.int st 4 = 0 then
    if Random.State.int st 8 = 0 then Const (Random.State.bool st)
    else V (Random.State.int st n)
  else
    match Random.State.int st 5 with
    | 0 -> Not (random_expr n (depth - 1))
    | 1 -> And (random_expr n (depth - 1), random_expr n (depth - 1))
    | 2 -> Or (random_expr n (depth - 1), random_expr n (depth - 1))
    | 3 -> Xor (random_expr n (depth - 1), random_expr n (depth - 1))
    | _ -> Ite (random_expr n (depth - 1), random_expr n (depth - 1), random_expr n (depth - 1))

let rec eval_expr env = function
  | V i -> env i
  | Const b -> b
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b
  | Ite (s, t, e) -> if eval_expr env s then eval_expr env t else eval_expr env e

let rec build man = function
  | V i -> Bdd.var man i
  | Const b -> if b then Bdd.one man else Bdd.zero man
  | Not e -> Bdd.not_ man (build man e)
  | And (a, b) -> Bdd.and_ man (build man a) (build man b)
  | Or (a, b) -> Bdd.or_ man (build man a) (build man b)
  | Xor (a, b) -> Bdd.xor_ man (build man a) (build man b)
  | Ite (s, t, e) -> Bdd.ite man (build man s) (build man t) (build man e)

let env_of_mask m i = m land (1 lsl i) <> 0

let test_semantics () =
  for _ = 1 to 200 do
    let n = 1 + Random.State.int st 6 in
    let e = random_expr n 6 in
    let man = Bdd.man () in
    let f = build man e in
    for m = 0 to (1 lsl n) - 1 do
      Alcotest.(check bool) "eval" (eval_expr (env_of_mask m) e)
        (Bdd.eval man f (env_of_mask m))
    done
  done

let test_canonicity () =
  (* semantically equal expressions build identical nodes *)
  for _ = 1 to 100 do
    let n = 1 + Random.State.int st 5 in
    let e1 = random_expr n 5 and e2 = random_expr n 5 in
    let man = Bdd.man () in
    let f1 = build man e1 and f2 = build man e2 in
    let sem_equal = ref true in
    for m = 0 to (1 lsl n) - 1 do
      if eval_expr (env_of_mask m) e1 <> eval_expr (env_of_mask m) e2 then sem_equal := false
    done;
    Alcotest.(check bool) "canonicity" !sem_equal (Bdd.equal f1 f2)
  done

let test_ite_identities () =
  let man = Bdd.man () in
  let a = Bdd.var man 0 and b = Bdd.var man 1 in
  Alcotest.(check bool) "ite(a,1,0)=a" true (Bdd.equal (Bdd.ite man a (Bdd.one man) (Bdd.zero man)) a);
  Alcotest.(check bool) "ite(a,b,b)=b" true (Bdd.equal (Bdd.ite man a b b) b);
  Alcotest.(check bool) "not not a = a" true (Bdd.equal (Bdd.not_ man (Bdd.not_ man a)) a);
  Alcotest.(check bool) "a xor a = 0" true (Bdd.is_zero man (Bdd.xor_ man a a));
  Alcotest.(check bool) "a nand a = not a" true
    (Bdd.equal (Bdd.nand_ man a a) (Bdd.not_ man a));
  Alcotest.(check bool) "de morgan" true
    (Bdd.equal (Bdd.nor_ man a b) (Bdd.and_ man (Bdd.not_ man a) (Bdd.not_ man b)))

let test_cofactor_shannon () =
  for _ = 1 to 100 do
    let n = 1 + Random.State.int st 5 in
    let e = random_expr n 5 in
    let man = Bdd.man () in
    let f = build man e in
    let v = Random.State.int st n in
    let f0 = Bdd.cofactor man f ~var:v false in
    let f1 = Bdd.cofactor man f ~var:v true in
    (* Shannon: f = v·f1 + ~v·f0 *)
    let x = Bdd.var man v in
    let recomposed = Bdd.or_ man (Bdd.and_ man x f1) (Bdd.and_ man (Bdd.not_ man x) f0) in
    Alcotest.(check bool) "shannon expansion" true (Bdd.equal f recomposed);
    (* cofactors independent of v *)
    Alcotest.(check bool) "f0 indep" false (Bdd.depends_on man f0 v);
    Alcotest.(check bool) "f1 indep" false (Bdd.depends_on man f1 v)
  done

let test_compose () =
  for _ = 1 to 60 do
    let n = 2 + Random.State.int st 4 in
    let e = random_expr n 4 and g = random_expr n 4 in
    let man = Bdd.man () in
    let f = build man e and gb = build man g in
    let v = Random.State.int st n in
    let composed = Bdd.compose man f ~var:v gb in
    for m = 0 to (1 lsl n) - 1 do
      let env = env_of_mask m in
      let gv = eval_expr env g in
      let env' i = if i = v then gv else env i in
      Alcotest.(check bool) "compose semantics" (eval_expr env' e)
        (Bdd.eval man composed env)
    done
  done

let test_quantifiers () =
  for _ = 1 to 60 do
    let n = 2 + Random.State.int st 4 in
    let e = random_expr n 4 in
    let man = Bdd.man () in
    let f = build man e in
    let v = Random.State.int st n in
    let ex = Bdd.exists man [ v ] f in
    let fa = Bdd.forall man [ v ] f in
    for m = 0 to (1 lsl n) - 1 do
      let env = env_of_mask m in
      let at b i = if i = v then b else env i in
      let e0 = eval_expr (at false) e and e1 = eval_expr (at true) e in
      Alcotest.(check bool) "exists" (e0 || e1) (Bdd.eval man ex env);
      Alcotest.(check bool) "forall" (e0 && e1) (Bdd.eval man fa env)
    done
  done

let test_support () =
  let man = Bdd.man () in
  let a = Bdd.var man 0 and b = Bdd.var man 2 in
  let f = Bdd.and_ man a (Bdd.or_ man b (Bdd.not_ man a)) in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Bdd.support man f);
  (* false dependency: a xor a has empty support *)
  Alcotest.(check (list int)) "no false deps" [] (Bdd.support man (Bdd.xor_ man a a))

let test_sat_count () =
  for _ = 1 to 60 do
    let n = 1 + Random.State.int st 5 in
    let e = random_expr n 5 in
    let man = Bdd.man () in
    let f = build man e in
    let expected = ref 0 in
    for m = 0 to (1 lsl n) - 1 do
      if eval_expr (env_of_mask m) e then incr expected
    done;
    Alcotest.(check int) "sat count" !expected
      (int_of_float (Bdd.sat_count man f ~nvars:n))
  done

let test_any_sat () =
  for _ = 1 to 60 do
    let n = 1 + Random.State.int st 5 in
    let e = random_expr n 5 in
    let man = Bdd.man () in
    let f = build man e in
    match Bdd.any_sat man f with
    | None -> Alcotest.(check bool) "zero" true (Bdd.is_zero man f)
    | Some assignment ->
        let env i =
          match List.assoc_opt i assignment with Some b -> b | None -> false
        in
        Alcotest.(check bool) "witness satisfies" true (Bdd.eval man f env)
  done

let test_unateness () =
  let man = Bdd.man () in
  let a = Bdd.var man 0 and b = Bdd.var man 1 and c = Bdd.var man 2 in
  (* f = a·b + c: positive unate in a, b, c *)
  let f = Bdd.or_ man (Bdd.and_ man a b) c in
  Alcotest.(check bool) "pos unate a" true (Bdd.is_positive_unate man f ~var:0);
  Alcotest.(check bool) "pos unate c" true (Bdd.is_positive_unate man f ~var:2);
  Alcotest.(check bool) "not neg unate a" false (Bdd.is_negative_unate man f ~var:0);
  (* g = a xor b: neither *)
  let g = Bdd.xor_ man a b in
  Alcotest.(check bool) "xor not pos" false (Bdd.is_positive_unate man g ~var:0);
  Alcotest.(check bool) "xor not neg" false (Bdd.is_negative_unate man g ~var:0);
  (* h = ~a·b: negative unate in a *)
  let h = Bdd.and_ man (Bdd.not_ man a) b in
  Alcotest.(check bool) "neg unate" true (Bdd.is_negative_unate man h ~var:0);
  (* constants are both *)
  Alcotest.(check bool) "const unate" true (Bdd.is_positive_unate man (Bdd.one man) ~var:0)

let test_unateness_random () =
  for _ = 1 to 60 do
    let n = 1 + Random.State.int st 4 in
    let e = random_expr n 5 in
    let man = Bdd.man () in
    let f = build man e in
    let v = Random.State.int st n in
    (* brute-force positive unateness: no m with f(v=0)=1 and f(v=1)=0 *)
    let pos = ref true in
    for m = 0 to (1 lsl n) - 1 do
      let at b i = if i = v then b else env_of_mask m i in
      if eval_expr (at false) e && not (eval_expr (at true) e) then pos := false
    done;
    Alcotest.(check bool) "unate matches brute force" !pos
      (Bdd.is_positive_unate man f ~var:v)
  done

let test_size_and_sharing () =
  let man = Bdd.man () in
  let a = Bdd.var man 0 and b = Bdd.var man 1 in
  let f = Bdd.and_ man a b in
  let g = Bdd.and_ man a b in
  Alcotest.(check bool) "hash consing shares" true (Bdd.equal f g);
  Alcotest.(check bool) "size of var" true (Bdd.size man a = 3)

let suite =
  [
    Alcotest.test_case "semantics vs truth table" `Quick test_semantics;
    Alcotest.test_case "canonicity" `Quick test_canonicity;
    Alcotest.test_case "ite identities" `Quick test_ite_identities;
    Alcotest.test_case "cofactor/shannon" `Quick test_cofactor_shannon;
    Alcotest.test_case "compose" `Quick test_compose;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "sat_count" `Quick test_sat_count;
    Alcotest.test_case "any_sat" `Quick test_any_sat;
    Alcotest.test_case "unateness basics" `Quick test_unateness;
    Alcotest.test_case "unateness random" `Quick test_unateness_random;
    Alcotest.test_case "sharing/size" `Quick test_size_and_sharing;
  ]
