(* AIG: structural hashing, simulation, CNF export, circuit compilation. *)

let st = Random.State.make [| 0xA16 |]

let test_constant_folding () =
  let g = Aig.create () in
  let a = Aig.input g in
  Alcotest.(check int) "a & 0" Aig.lit_false (Aig.and_ g a Aig.lit_false);
  Alcotest.(check int) "a & 1" a (Aig.and_ g a Aig.lit_true);
  Alcotest.(check int) "a & a" a (Aig.and_ g a a);
  Alcotest.(check int) "a & ~a" Aig.lit_false (Aig.and_ g a (Aig.neg a));
  Alcotest.(check int) "~~a" a (Aig.neg (Aig.neg a))

let test_strashing () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let x = Aig.and_ g a b in
  let y = Aig.and_ g b a in
  Alcotest.(check int) "commutative strash" x y;
  let n0 = Aig.node_count g in
  ignore (Aig.and_ g a b);
  Alcotest.(check int) "no new node" n0 (Aig.node_count g)

let test_derived_ops () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g and c = Aig.input g in
  let cases = [ (false, false); (false, true); (true, false); (true, true) ] in
  List.iter
    (fun (va, vb) ->
      List.iter
        (fun vc ->
          let env = [| va; vb; vc |] in
          Alcotest.(check bool) "or" (va || vb) (Aig.eval g env (Aig.or_ g a b));
          Alcotest.(check bool) "xor" (va <> vb) (Aig.eval g env (Aig.xor_ g a b));
          Alcotest.(check bool) "mux"
            (if va then vb else vc)
            (Aig.eval g env (Aig.mux g a b c)))
        [ false; true ])
    cases

let test_simulate_parallel () =
  (* 64-bit parallel simulation agrees with single evaluation *)
  for _ = 1 to 20 do
    let g = Aig.create () in
    let n_in = 2 + Random.State.int st 4 in
    let ins = List.init n_in (fun _ -> Aig.input g) in
    let pool = ref ins in
    for _ = 1 to 30 do
      let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
      let l1 = pick () and l2 = pick () in
      let l1 = if Random.State.bool st then Aig.neg l1 else l1 in
      pool := Aig.and_ g l1 l2 :: !pool
    done;
    let root = List.hd !pool in
    let words = Array.init n_in (fun _ -> Random.State.int64 st Int64.max_int) in
    let vals = Aig.simulate g words in
    let w = Aig.sim_lit vals root in
    for bit = 0 to 63 do
      let env = Array.map (fun word -> Int64.logand (Int64.shift_right_logical word bit) 1L = 1L) words in
      let expected = Aig.eval g env root in
      let got = Int64.logand (Int64.shift_right_logical w bit) 1L = 1L in
      Alcotest.(check bool) "parallel bit" expected got
    done
  done

let test_cnf_equisatisfiable () =
  (* CNF of a cone: for every input assignment, SAT with unit assumptions
     must agree with direct evaluation of the root *)
  for _ = 1 to 30 do
    let g = Aig.create () in
    let n_in = 2 + Random.State.int st 3 in
    let ins = List.init n_in (fun _ -> Aig.input g) in
    let pool = ref ins in
    for _ = 1 to 15 do
      let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
      let l1 = pick () and l2 = pick () in
      let l1 = if Random.State.bool st then Aig.neg l1 else l1 in
      pool := Aig.and_ g l1 l2 :: !pool
    done;
    let root = List.hd !pool in
    let m = Aig.to_cnf g ~roots:[ root ] in
    for mask = 0 to (1 lsl n_in) - 1 do
      let env = Array.init n_in (fun i -> mask land (1 lsl i) <> 0) in
      let expected = Aig.eval g env root in
      (* assume all inputs in the cone plus the root's value *)
      let assumptions = ref [] in
      List.iteri
        (fun i l ->
          match Aig.cnf_lit m l with
          | v -> assumptions := (if env.(i) then v else -v) :: !assumptions
          | exception Invalid_argument _ -> () (* input not in cone *))
        ins;
      let rl = Aig.cnf_lit m root in
      let sat_true =
        Sat.solve ~assumptions:(rl :: !assumptions) m.Aig.solver = Sat.Sat
      in
      let sat_false =
        Sat.solve ~assumptions:(-rl :: !assumptions) m.Aig.solver = Sat.Sat
      in
      Alcotest.(check bool) "cnf agrees (true)" expected sat_true;
      Alcotest.(check bool) "cnf agrees (false)" (not expected) sat_false
    done
  done

let test_of_circuit_comb () =
  for _ = 1 to 30 do
    let c = Gen.comb st ~name:"aigc" ~inputs:(2 + Random.State.int st 4) ~gates:30 ~outputs:2 in
    let g = Aig.create () in
    let input_lits = Hashtbl.create 8 in
    let source s =
      match Hashtbl.find_opt input_lits s with
      | Some l -> l
      | None ->
          let l = Aig.input g in
          Hashtbl.replace input_lits s l;
          l
    in
    let env = Aig.of_circuit_comb g c ~source in
    (* compare on random assignments *)
    let ins = Circuit.inputs c in
    for _ = 1 to 20 do
      let values = List.map (fun _ -> Random.State.bool st) ins in
      let tbl = Hashtbl.create 8 in
      List.iter2 (fun s v -> Hashtbl.replace tbl s v) ins values;
      let cvals = Eval.comb_eval c ~source:(Hashtbl.find tbl) in
      (* AIG inputs were created in of_circuit_comb's traversal order; build
         env array by input index *)
      let aig_env = Array.make (Aig.num_inputs g) false in
      Hashtbl.iter
        (fun s l ->
          (* recover input position: input_lit i = l *)
          let rec find i =
            if Aig.input_lit g i = l then i else find (i + 1)
          in
          aig_env.(find 0) <- Hashtbl.find tbl s)
        input_lits;
      List.iter
        (fun o ->
          Alcotest.(check bool) "of_circuit agrees" cvals.(o)
            (Aig.eval g aig_env env.Aig.of_signal.(o)))
        (Circuit.outputs c)
    done
  done

let test_levels () =
  let g = Aig.create () in
  let a = Aig.input g and b = Aig.input g in
  let x = Aig.and_ g a b in
  let y = Aig.and_ g x (Aig.neg b) in
  Alcotest.(check int) "input level" 0 (Aig.level g (Aig.node_of a));
  Alcotest.(check int) "and level" 1 (Aig.level g (Aig.node_of x));
  Alcotest.(check int) "deeper" 2 (Aig.level g (Aig.node_of y))

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "structural hashing" `Quick test_strashing;
    Alcotest.test_case "derived ops" `Quick test_derived_ops;
    Alcotest.test_case "parallel simulation" `Quick test_simulate_parallel;
    Alcotest.test_case "CNF equisatisfiable" `Quick test_cnf_equisatisfiable;
    Alcotest.test_case "circuit compilation" `Quick test_of_circuit_comb;
    Alcotest.test_case "levels" `Quick test_levels;
  ]
