(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 8) on the synthetic benchmark suite, plus bechamel
   micro-benchmarks of the dominating kernels and the ablations listed in
   DESIGN.md.

   Usage:
     dune exec bench/main.exe                 # tables + figures + quick micro
     dune exec bench/main.exe -- --table1     # Table 1 only (small suite)
     dune exec bench/main.exe -- --table1 --full   # all 23 circuits
     dune exec bench/main.exe -- --table1 --smoke  # exit 1 unless all EQ
     dune exec bench/main.exe -- --table2     # Table 2 (exposure counts)
     dune exec bench/main.exe -- --suite retime [--smoke] [--jobs N]
                                              # retiming-core tier (deep datapaths)
     dune exec bench/main.exe -- --suite large [--smoke] [--jobs N|auto]
                                              # large tier (FIFOs, lane ALUs):
                                              # adaptive partitioning vs monolithic
     dune exec bench/main.exe -- --suite serve [--smoke] [--jobs N|auto]
                                              # warm concurrent server vs cold
                                              # one-shot runs (BENCH_serve.json)
     dune exec bench/main.exe -- --suite hier [--smoke] [--jobs N|auto]
                                              # compositional SEC vs flat, warm
                                              # verdict reuse (BENCH_hier.json)
   --jobs accepts an integer or "auto" (Domain.recommended_domain_count,
   further capped per check by the layout's bin count; default 1).
     dune exec bench/main.exe -- --figs       # figure reproductions
     dune exec bench/main.exe -- --ablation-cec | --ablation-rewrite
                                 | --ablation-dchoice
     dune exec bench/main.exe -- --micro      # bechamel micro-benchmarks *)

let pf = Format.printf

(* benchmark circuits are all well-formed, so a diagnosis here is a bug *)
let ok what = function
  | Ok r -> r
  | Error d ->
      failwith (Printf.sprintf "%s: %s" what (Seqprob.diagnosis_to_string d))

let check_outcome ?engine ?jobs ?limits ?store ?rewrite_events ?guard_events
    ?exposed c1 c2 =
  ok "verify"
    (Verify.check ?engine ?jobs ?limits ?store ?rewrite_events ?guard_events
       ?exposed c1 c2)

let check_verdict ?engine ?rewrite_events ?guard_events ?exposed c1 c2 =
  (check_outcome ?engine ?rewrite_events ?guard_events ?exposed c1 c2)
    .Verify.verdict

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

(* One measured circuit of the Table-1 run, for the text summary and the
   machine-readable BENCH_table1.json trajectory file. *)
type t1_record = {
  r_name : string;
  r_verdict : string;
  r_seconds : float;  (* verify wall-clock at the requested --jobs *)
  r_seq_seconds : float option;  (* same check, jobs=1 monolithic *)
  r_seq_verdict : string option;
  r_unrolled_nodes : int;  (* AND nodes of the shared unrolled AIG *)
  r_cec : Cec.stats;
  r_unroll_seconds : float;  (* Verify.stats.unroll_seconds *)
  r_retime_seconds : float;  (* Flow stages C+E+F+G (synthesis+retiming) *)
  r_retime_ref_seconds : float;  (* same stages, reference retiming pipeline *)
  (* same H-vs-J check re-run against the shared verdict store with a fresh
     in-memory cache (--cache-dir only): verdict, seconds, cec stats *)
  r_warm : (string * float * Cec.stats) option;
}

let verdict_str = function
  | Verify.Equivalent -> "EQ"
  | Verify.Inequivalent _ -> "NEQ"
  | Verify.Undecided _ -> "UNDEC"

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf ch
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_table1_json ~path ~suite_name ~jobs records =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  let total = List.fold_left (fun a r -> a +. r.r_seconds) 0. records in
  let seq_total =
    if List.for_all (fun r -> r.r_seq_seconds <> None) records && records <> [] then
      Some
        (List.fold_left
           (fun a r -> a +. Option.value ~default:0. r.r_seq_seconds)
           0. records)
    else None
  in
  p "{\n";
  p "  \"suite\": \"%s\",\n" (json_escape suite_name);
  p "  \"jobs\": %d,\n" jobs;
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    {\"circuit\": \"%s\", \"verdict\": \"%s\", \"verify_seconds\": %.6f, "
        (json_escape r.r_name) (json_escape r.r_verdict) r.r_seconds;
      (match (r.r_seq_seconds, r.r_seq_verdict) with
      | Some s, Some v ->
          p "\"verify_seconds_jobs1\": %.6f, \"verdict_jobs1\": \"%s\", " s (json_escape v)
      | _ -> ());
      p "\"unrolled_aig_nodes\": %d, " r.r_unrolled_nodes;
      p "\"sat_calls\": %d, \"sim_rounds\": %d, \"partitions\": %d, \"cache_hits\": %d, "
        r.r_cec.Cec.sat_calls r.r_cec.Cec.sim_rounds r.r_cec.Cec.partitions
        r.r_cec.Cec.cache_hits;
      p "\"store_hits\": %d, \"store_writes\": %d, \"cache_evictions\": %d, "
        r.r_cec.Cec.store_hits r.r_cec.Cec.store_writes
        r.r_cec.Cec.cache_evictions;
      p "\"conflicts\": %d, \"budget_hits\": %d, \"deadline_hits\": %d, \"escalations\": %d, \"undecided\": %d, "
        r.r_cec.Cec.conflicts r.r_cec.Cec.budget_hits r.r_cec.Cec.deadline_hits
        r.r_cec.Cec.escalations r.r_cec.Cec.undecided;
      (* per-phase seconds, derived from the Obs span instrumentation:
         engine phases are CPU-seconds (summed across partitions), the
         elapsed field is the CEC's true wall clock *)
      p "\"phase_unroll_seconds\": %.6f, \"phase_partition_seconds\": %.6f, "
        r.r_unroll_seconds r.r_cec.Cec.partition_seconds;
      p "\"phase_sweep_cpu_seconds\": %.6f, \"phase_sat_cpu_seconds\": %.6f, \"phase_bdd_cpu_seconds\": %.6f, "
        r.r_cec.Cec.sweep_seconds r.r_cec.Cec.sat_seconds
        r.r_cec.Cec.bdd_seconds;
      p
        "\"phase_retime_seconds\": %.6f, \"phase_retime_reference_seconds\": \
         %.6f, \"elapsed_seconds\": %.6f}%s\n"
        r.r_retime_seconds r.r_retime_ref_seconds r.r_cec.Cec.elapsed_seconds
        (if i = List.length records - 1 then "" else ","))
    records;
  p "  ],\n";
  (* paired before/after summary for the retiming stages: geometric mean of
     per-circuit reference/fast ratios *)
  (if records <> [] then
     let logsum =
       List.fold_left
         (fun acc r ->
           acc
           +. Float.log
                (r.r_retime_ref_seconds /. Float.max r.r_retime_seconds 1e-9))
         0. records
     in
     p "  \"retime_speedup\": %.3f,\n"
       (Float.exp (logsum /. float_of_int (List.length records))));
  (* warm rows live in their own section so the cold totals/speedup above
     keep their meaning *)
  if List.exists (fun r -> r.r_warm <> None) records then begin
    p "  \"rows_warm\": [\n";
    let warm = List.filter (fun r -> r.r_warm <> None) records in
    List.iteri
      (fun i r ->
        match r.r_warm with
        | None -> ()
        | Some (v, secs, cec) ->
            p
              "    {\"circuit\": \"%s\", \"verdict\": \"%s\", \
               \"verify_seconds\": %.6f, \"partitions\": %d, \
               \"cache_hits\": %d, \"store_hits\": %d, \"store_writes\": \
               %d, \"sat_calls\": %d}%s\n"
              (json_escape r.r_name) (json_escape v) secs cec.Cec.partitions
              cec.Cec.cache_hits cec.Cec.store_hits cec.Cec.store_writes
              cec.Cec.sat_calls
              (if i = List.length warm - 1 then "" else ","))
      warm;
    p "  ],\n";
    p "  \"total_verify_seconds_warm\": %.6f,\n"
      (List.fold_left
         (fun a r ->
           match r.r_warm with Some (_, s, _) -> a +. s | None -> a)
         0. records)
  end;
  p "  \"total_verify_seconds\": %.6f" total;
  (match seq_total with
  | Some s ->
      p ",\n  \"total_verify_seconds_jobs1\": %.6f" s;
      p ",\n  \"speedup\": %.3f" (if total > 0. then s /. total else 1.)
  | None -> ());
  (* per-suite parallel speedup: geomean over rows of jobs1/jobsN (1.0 at
     jobs=1 by construction; with the adaptive layout small circuits take
     the monolithic fast path at every jobs value, so this sits at ~1) *)
  (let pairs =
     List.filter_map
       (fun r -> Option.map (fun s1 -> s1 /. Float.max r.r_seconds 1e-9) r.r_seq_seconds)
       records
   in
   if pairs <> [] then
     p ",\n  \"parallel_speedup\": %.3f"
       (Float.exp
          (List.fold_left (fun a x -> a +. Float.log x) 0. pairs
          /. float_of_int (List.length pairs))));
  p "\n}\n";
  close_out oc

(* Smoke-mode budget demo: a real B-vs-C miter under a 1-conflict SAT budget
   must come back Undecided (not a hang, not a wrong Equivalent), and the
   escalation ladder must then prove the very same problem, spending nonzero
   budget/escalation counters. *)
let budget_smoke () =
  let c = Workloads.by_name "s953" in
  let b, copt = ok "flow" (Flow.circuits c) in
  let plan = Feedback.plan_structural c in
  let names = List.map (Circuit.signal_name c) plan.Feedback.exposed in
  let ex cc s = List.mem (Circuit.signal_name cc s) names in
  let bld = Seqprob.builder () in
  let o1, _ = ok "unroll" (Cbf.unroll ~exposed:(ex b) bld b) in
  let o2, _ = ok "unroll" (Cbf.unroll ~exposed:(ex copt) bld copt) in
  let p = ok "problem" (Seqprob.problem bld ~outs1:o1 ~outs2:o2) in
  let tiny = { Cec.no_limits with Cec.sat_conflicts = Some 1; escalate = false } in
  let v1, s1 =
    Cec.check_problem_with_stats ~engine:Cec.Sat_engine ~limits:tiny p
  in
  let ladder = { Cec.default_limits with Cec.sat_conflicts = Some 1 } in
  let v2, s2 =
    Cec.check_problem_with_stats ~engine:Cec.Sweep_engine ~limits:ladder p
  in
  let show = function
    | Cec.Equivalent -> "EQ"
    | Cec.Inequivalent _ -> "NEQ"
    | Cec.Undecided r -> Printf.sprintf "UNDEC(%s)" r
  in
  pf
    "budget smoke: 1-conflict SAT budget -> %s (%d budget hits); escalation ladder -> %s (%d escalations, %d budget hits, %d conflicts)@."
    (show v1) s1.Cec.budget_hits (show v2) s2.Cec.escalations
    s2.Cec.budget_hits s2.Cec.conflicts;
  match (v1, v2) with
  | Cec.Undecided _, Cec.Equivalent
    when s1.Cec.budget_hits > 0 && s2.Cec.escalations > 0 ->
      ()
  | _ ->
      pf "SMOKE FAILURE: budget/escalation semantics@.";
      exit 1

let table1 ~full ~jobs ~smoke ~cache_dir () =
  pf "@.== Table 1: optimization and verification results ==@.";
  pf "(A = original; C = expose+synth+min-period retime; D = synth only;@.";
  pf " E = expose+synth+min-area retime at D's period; F/G = like C/E without@.";
  pf " exposure.  Areas normalized to D, as in the paper.  S = unit-delay period.)@.";
  if jobs > 1 then
    pf "(HvJ checked with --jobs %d: output-partitioned, %d domains; the jobs=1@.\
       \ column re-times the same check monolithically for the speedup.)@." jobs jobs;
  pf "@.";
  pf "%-9s| %5s | %4s %5s %3s | %3s | %4s %5s %3s | %3s | %4s | %4s %5s | %4s | %8s@."
    "circuit" "A#L" "F#L" "Farea" "FS" "%" "C#L" "Carea" "CS" "DS" "G#L" "E#L"
    "Earea" "ok" "HvJ";
  pf "%s@." (String.make 100 '-');
  let store = Option.map (fun d -> Store.open_ d) cache_dir in
  (match (store, cache_dir) with
  | Some st, Some d ->
      let i = Store.info st in
      pf "(verdict store %s: %d entries%s)@." d i.Store.entries
        (match i.Store.quarantined_to with
        | Some q -> Printf.sprintf ", corrupt log quarantined to %s" q
        | None -> "")
  | _ -> ());
  let suite = if full then Workloads.table1_suite () else Workloads.table1_suite_small () in
  let records =
    List.map
      (fun (name, c) ->
        (* generous default limits: easy instances are unaffected, runaway
           solves surface as UNDEC instead of hanging the bench *)
        let row = ok "flow" (Flow.run ~jobs ~limits:Cec.default_limits ?store c) in
        let darea = float_of_int (max 1 row.Flow.d.Flow.area) in
        let rel a = float_of_int a /. darea in
        pf
          "%-9s| %5d | %4d %5.2f %3d | %3.0f | %4d %5.2f %3d | %3d | %4d | %4d %5.2f | %4s | %7.2fs@."
          name row.Flow.a.Flow.latches row.Flow.f.Flow.latches (rel row.Flow.f.Flow.area)
          row.Flow.f.Flow.delay row.Flow.exposed_percent row.Flow.c.Flow.latches
          (rel row.Flow.c.Flow.area) row.Flow.c.Flow.delay row.Flow.d.Flow.delay
          row.Flow.g.Flow.latches row.Flow.e.Flow.latches (rel row.Flow.e.Flow.area)
          (match row.Flow.verify_verdict with
          | Verify.Equivalent -> "EQ"
          | Verify.Inequivalent _ -> "NEQ!"
          | Verify.Undecided _ -> "UNDEC?")
          row.Flow.verify_seconds;
        let seq =
          if jobs <= 1 then None
          else begin
            (* re-time the H-vs-J check at both job counts.  [Flow.run]
               above already executed it once at [jobs], so both
               measurements here run warm under the same allocator/GC
               state — pairing the cold first execution with a warm
               jobs=1 re-run systematically understates the jobs=N side
               on millisecond-scale rows *)
            let plan = Feedback.plan_structural c in
            let exposed = List.map (Circuit.signal_name c) plan.Feedback.exposed in
            let b, copt = ok "flow" (Flow.circuits c) in
            let on =
              check_outcome ~jobs ~limits:Cec.default_limits ~exposed b copt
            in
            let o1 =
              check_outcome ~jobs:1 ~limits:Cec.default_limits ~exposed b copt
            in
            Some
              ( on.Verify.stats.Verify.seconds,
                (o1.Verify.stats.Verify.seconds, verdict_str o1.Verify.verdict)
              )
          end
        in
        let warm =
          match store with
          | None -> None
          | Some st ->
              (* the same H-vs-J check again, fresh in-memory cache backed
                 by the now-populated store: every partition the cold run
                 proved should come back without engine work *)
              let plan = Feedback.plan_structural c in
              let exposed =
                List.map (Circuit.signal_name c) plan.Feedback.exposed
              in
              let b, copt = ok "flow" (Flow.circuits c) in
              let o =
                check_outcome ~jobs ~limits:Cec.default_limits ~store:st
                  ~exposed b copt
              in
              let cec = o.Verify.stats.Verify.cec in
              pf
                "          warm re-check: %s %.3fs, %d/%d partitions from \
                 store (+%d cached)@."
                (verdict_str o.Verify.verdict) o.Verify.stats.Verify.seconds
                cec.Cec.store_hits cec.Cec.partitions cec.Cec.cache_hits;
              Some
                ( verdict_str o.Verify.verdict,
                  o.Verify.stats.Verify.seconds,
                  cec )
        in
        let retime_ref =
          match Flow.reference_retime_seconds c with
          | Ok s -> s
          | Error d -> failwith (Seqprob.diagnosis_to_string d)
        in
        {
          r_name = name;
          r_verdict = verdict_str row.Flow.verify_verdict;
          r_seconds =
            (* warm jobs=N re-timing when paired with a jobs=1 number *)
            (match seq with
            | Some (wn, _) -> wn
            | None -> row.Flow.verify_seconds);
          r_seq_seconds = Option.map (fun (_, (s, _)) -> s) seq;
          r_seq_verdict = Option.map (fun (_, (_, v)) -> v) seq;
          r_warm = warm;
          r_unrolled_nodes = row.Flow.verify_stats.Verify.unrolled_nodes;
          r_cec = row.Flow.verify_stats.Verify.cec;
          r_unroll_seconds = row.Flow.verify_stats.Verify.unroll_seconds;
          r_retime_seconds =
            List.fold_left
              (fun a (st, dt) ->
                if List.mem st [ "C"; "E"; "F"; "G" ] then a +. dt else a)
              0. row.Flow.stage_seconds;
          r_retime_ref_seconds = retime_ref;
        })
      suite
  in
  let total = List.fold_left (fun a r -> a +. r.r_seconds) 0. records in
  pf "%s@." (String.make 100 '-');
  if jobs > 1 then begin
    let seq_total =
      List.fold_left (fun a r -> a +. Option.value ~default:0. r.r_seq_seconds) 0. records
    in
    let agree =
      List.for_all (fun r -> r.r_seq_verdict = Some r.r_verdict) records
    in
    pf "verify wall-clock: jobs=%d %.2fs vs jobs=1 %.2fs  (speedup %.2fx, verdicts %s)@."
      jobs total seq_total
      (if total > 0. then seq_total /. total else 1.)
      (if agree then "agree" else "DISAGREE!")
  end
  else pf "verify wall-clock: jobs=1 %.2fs@." total;
  (if records <> [] then
     let fast = List.fold_left (fun a r -> a +. r.r_retime_seconds) 0. records in
     let refr =
       List.fold_left (fun a r -> a +. r.r_retime_ref_seconds) 0. records
     in
     let logsum =
       List.fold_left
         (fun acc r ->
           acc
           +. Float.log
                (r.r_retime_ref_seconds /. Float.max r.r_retime_seconds 1e-9))
         0. records
     in
     pf
       "retime stages (C+E+F+G): fast %.2fs vs reference %.2fs (geomean \
        speedup %.2fx)@."
       fast refr
       (Float.exp (logsum /. float_of_int (List.length records))));
  (match store with
  | Some st ->
      let warm_total =
        List.fold_left
          (fun a r -> match r.r_warm with Some (_, s, _) -> a +. s | None -> a)
          0. records
      in
      pf "verify wall-clock warm (store-backed re-check): %.2fs@." warm_total;
      pf "verdict store after run: %a@." Store.pp_info (Store.info st);
      Store.close st
  | None -> ());
  let suite_name = if full then "full" else "small" in
  write_table1_json ~path:"BENCH_table1.json" ~suite_name ~jobs records;
  pf "wrote BENCH_table1.json@.";
  if smoke then begin
    let bad =
      List.filter
        (fun r ->
          r.r_verdict <> "EQ"
          || (match r.r_seq_verdict with Some v -> v <> "EQ" | None -> false)
          || match r.r_warm with Some (v, _, _) -> v <> "EQ" | None -> false)
        records
    in
    if bad <> [] then begin
      List.iter
        (fun r -> pf "SMOKE FAILURE: %s verdict %s@." r.r_name r.r_verdict)
        bad;
      exit 1
    end;
    pf "smoke: all %d verdicts Equivalent@." (List.length records);
    (* with a verdict store, the warm re-check must answer at least half
       of all partitions without engine work — store hits plus memory hits
       on verdicts the store promoted — and hit the store at all *)
    (match store with
    | Some _ ->
        let parts, served, st_hits =
          List.fold_left
            (fun (p, s, h) r ->
              match r.r_warm with
              | Some (_, _, cec) ->
                  ( p + cec.Cec.partitions,
                    s + cec.Cec.store_hits + cec.Cec.cache_hits,
                    h + cec.Cec.store_hits )
              | None -> (p, s, h))
            (0, 0, 0) records
        in
        if st_hits = 0 || 2 * served < parts then begin
          pf
            "SMOKE FAILURE: warm re-check served %d of %d partitions (%d \
             from store)@."
            served parts st_hits;
          exit 1
        end;
        pf "smoke: warm re-check served %d/%d partitions (%d store hits)@."
          served parts st_hits
    | None -> ());
    budget_smoke ()
  end

(* ------------------------------------------------------------------ *)
(* Retime suite                                                        *)
(* ------------------------------------------------------------------ *)

(* Retiming-core tier on the deep-datapath workloads: times min-period
   search plus min-area retiming on the raw retiming graph (no synthesis,
   no verification — this tier isolates the retiming engines).  Small
   instances are checked differentially against the reference pipeline; in
   [--smoke] mode any disagreement (or an illegal/over-period labeling)
   exits nonzero, and the largest instances are skipped to keep CI fast. *)
let suite_retime ~jobs ~smoke () =
  pf "@.== Retime suite: deep pipelined datapaths ==@.";
  pf "(fast = incremental FEAS + warm-started search + scaling flow;@.";
  pf " ref = naive FEAS bisection + unpruned constraints + old flow core.)@.@.";
  pf "%-12s %6s %6s | %4s %6s | %9s %9s %8s | %s@." "circuit" "n" "L_in"
    "P" "L_out" "fast" "ref" "speedup" "check";
  pf "%s@." (String.make 84 '-');
  let pool = if jobs > 1 then Some (Par.Pool.create ~jobs) else None in
  Fun.protect ~finally:(fun () ->
      match pool with Some p -> Par.Pool.shutdown p | None -> ())
  @@ fun () ->
  let failures = ref 0 in
  let suite =
    List.filter
      (fun (_, c) -> (not smoke) || Circuit.latch_count c <= 800)
      (Workloads.retime_suite ())
  in
  List.iter
    (fun (name, c) ->
      let g = Rgraph.build c in
      let n = Rgraph.vertex_count g in
      let fast () =
        let period, _ = Feas.min_period ?pool g in
        match Minarea.solve ~period ?pool g with
        | Some r -> (period, r)
        | None -> failwith "retime suite: min period infeasible?"
      in
      let (period, r), t_fast = Obs.timed_span ~name:"bench.retime_fast" fast in
      let latches_after = Rgraph.total_latches_after g ~r in
      let legal = Rgraph.is_legal g ~r && Feas.period_of g ~r <= period in
      let check, t_ref =
        if n > 1000 then ((if legal then "legal" else "ILLEGAL!"), None)
        else begin
          let reference () =
            let p, _ = Feas.Naive.min_period g in
            match Minarea.solve ~period:p ~reference:true g with
            | Some rr -> (p, rr)
            | None -> failwith "retime suite: reference infeasible?"
          in
          let (p_ref, r_ref), t_ref =
            Obs.timed_span ~name:"bench.retime_reference" reference
          in
          let agree =
            legal && p_ref = period
            && Rgraph.total_latches_after g ~r:r_ref = latches_after
          in
          ((if agree then "agree" else "DISAGREE!"), Some t_ref)
        end
      in
      if check = "DISAGREE!" || check = "ILLEGAL!" then incr failures;
      pf "%-12s %6d %6d | %4d %6d | %8.3fs %9s %8s | %s@." name n
        (Circuit.latch_count c) period latches_after t_fast
        (match t_ref with Some t -> Printf.sprintf "%8.3fs" t | None -> "-")
        (match t_ref with
        | Some t -> Printf.sprintf "%.1fx" (t /. Float.max t_fast 1e-9)
        | None -> "-")
        check)
    suite;
  pf "%s@." (String.make 84 '-');
  if smoke then
    if !failures > 0 then begin
      pf "SMOKE FAILURE: %d retime-suite disagreement(s)@." !failures;
      exit 1
    end
    else pf "smoke: fast retiming agrees with reference on all instances@."

(* ------------------------------------------------------------------ *)
(* Large suite                                                         *)
(* ------------------------------------------------------------------ *)

(* Large tier: equivalent style pairs of FIFOs and lane-ALU pipelines,
   sized past the adaptive layout's monolithic threshold.  Every row is
   checked at the requested --jobs (cost-packed cluster bins) and again at
   jobs=1 (monolithic fast path); the per-suite [parallel_speedup] is the
   geomean of the per-row jobs1/jobsN ratios.  On these workloads the
   partitioned path wins even on one core: the sweep engine's per-merge
   SAT queries run over per-cluster sub-AIGs instead of the whole graph,
   and a counterexample in any cluster cancels the siblings. *)
type lg_record = {
  g_name : string;
  g_verdict : string;
  g_seconds : float;
  g_seq_verdict : string;
  g_seq_seconds : float;
  g_cec : Cec.stats;
  g_nodes : int;
}

let geomean = function
  | [] -> 1.
  | xs ->
      Float.exp
        (List.fold_left (fun a x -> a +. Float.log (Float.max x 1e-9)) 0. xs
        /. float_of_int (List.length xs))

let write_large_json ~path ~jobs records speedup =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"suite\": \"large\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    {\"circuit\": \"%s\", \"verdict\": \"%s\", \"verify_seconds\": %.6f, "
        (json_escape r.g_name) (json_escape r.g_verdict) r.g_seconds;
      p "\"verdict_jobs1\": \"%s\", \"verify_seconds_jobs1\": %.6f, "
        (json_escape r.g_seq_verdict) r.g_seq_seconds;
      p "\"unrolled_aig_nodes\": %d, \"partitions\": %d, \"sat_calls\": %d, \"cache_hits\": %d, "
        r.g_nodes r.g_cec.Cec.partitions r.g_cec.Cec.sat_calls
        r.g_cec.Cec.cache_hits;
      p "\"phase_partition_seconds\": %.6f, \"phase_sweep_cpu_seconds\": %.6f, "
        r.g_cec.Cec.partition_seconds r.g_cec.Cec.sweep_seconds;
      p "\"phase_sat_cpu_seconds\": %.6f, \"phase_bdd_cpu_seconds\": %.6f, "
        r.g_cec.Cec.sat_seconds r.g_cec.Cec.bdd_seconds;
      p "\"elapsed_seconds\": %.6f, \"parallel_speedup\": %.3f}%s\n"
        r.g_cec.Cec.elapsed_seconds
        (r.g_seq_seconds /. Float.max r.g_seconds 1e-9)
        (if i = List.length records - 1 then "" else ","))
    records;
  p "  ],\n";
  p "  \"total_verify_seconds\": %.6f,\n"
    (List.fold_left (fun a r -> a +. r.g_seconds) 0. records);
  p "  \"total_verify_seconds_jobs1\": %.6f,\n"
    (List.fold_left (fun a r -> a +. r.g_seq_seconds) 0. records);
  p "  \"parallel_speedup\": %.3f\n" speedup;
  p "}\n";
  close_out oc

let suite_large ~jobs ~smoke () =
  pf "@.== Large suite: FIFOs and lane-ALU pipelines (adaptive layout) ==@.";
  pf "(each pair: two gate-level styles of the same design; jobs=1 is the@.";
  pf " monolithic fast path, jobs>=2 packs cost-balanced cluster bins.)@.@.";
  pf "%-14s %8s | %-6s %9s | %-6s %9s | %8s | %6s %5s@." "pair" "nodes"
    "jobsN" "secs" "jobs1" "secs" "speedup" "parts" "sat";
  pf "%s@." (String.make 84 '-');
  let exposed_of c =
    List.map (Circuit.signal_name c) (Feedback.plan_structural c).Feedback.exposed
  in
  let check_pair ~jobs c1 c2 =
    check_outcome ~jobs ~limits:Cec.default_limits ~exposed:(exposed_of c1) c1 c2
  in
  let row (name, c1, c2) =
    let o = check_pair ~jobs c1 c2 in
    let o1 = if jobs = 1 then o else check_pair ~jobs:1 c1 c2 in
    let cec = o.Verify.stats.Verify.cec in
    let r =
      {
        g_name = name;
        g_verdict = verdict_str o.Verify.verdict;
        g_seconds = o.Verify.stats.Verify.seconds;
        g_seq_verdict = verdict_str o1.Verify.verdict;
        g_seq_seconds = o1.Verify.stats.Verify.seconds;
        g_cec = cec;
        g_nodes = o.Verify.stats.Verify.unrolled_nodes;
      }
    in
    pf "%-14s %8d | %-6s %8.3fs | %-6s %8.3fs | %7.2fx | %6d %5d@." name
      r.g_nodes r.g_verdict r.g_seconds r.g_seq_verdict r.g_seq_seconds
      (r.g_seq_seconds /. Float.max r.g_seconds 1e-9)
      cec.Cec.partitions cec.Cec.sat_calls;
    r
  in
  let records = List.map row (Workloads.large_suite ~smoke ()) in
  (* the intentionally-inequivalent mutant exercises first-counterexample
     cancellation; it reports alongside but stays out of the speedup *)
  let mutant = row (let n, a, b = Workloads.large_mutant () in (n, a, b)) in
  pf "%s@." (String.make 84 '-');
  let speedup =
    geomean
      (List.map (fun r -> r.g_seq_seconds /. Float.max r.g_seconds 1e-9) records)
  in
  pf "parallel_speedup (geomean jobs1/jobs%d over %d equivalent pairs): %.2fx@."
    jobs (List.length records) speedup;
  write_large_json ~path:"BENCH_large.json" ~jobs records speedup;
  pf "wrote BENCH_large.json@.";
  if smoke then begin
    let fails = ref [] in
    List.iter
      (fun r ->
        if r.g_verdict <> "EQ" || r.g_seq_verdict <> "EQ" then
          fails := Printf.sprintf "%s: verdict %s/%s" r.g_name r.g_verdict r.g_seq_verdict :: !fails;
        if r.g_cec.Cec.sat_calls > 0 && r.g_cec.Cec.sat_seconds <= 0. then
          fails := Printf.sprintf "%s: %d sat calls but zero sat seconds" r.g_name r.g_cec.Cec.sat_calls :: !fails)
      records;
    if mutant.g_verdict <> "NEQ" || mutant.g_seq_verdict <> "NEQ" then
      fails := Printf.sprintf "%s: mutant verdict %s/%s (want NEQ)" mutant.g_name mutant.g_verdict mutant.g_seq_verdict :: !fails;
    if jobs > 1 && speedup <= 1. then
      fails := Printf.sprintf "parallel_speedup %.2f <= 1" speedup :: !fails;
    (match !fails with
    | [] ->
        pf "smoke: all pairs EQ at jobs=1 and jobs=%d, mutant NEQ, speedup %.2fx@."
          jobs speedup
    | fs ->
        List.iter (fun f -> pf "SMOKE FAILURE: %s@." f) fs;
        exit 1)
  end

(* ------------------------------------------------------------------ *)
(* Serve suite                                                         *)
(* ------------------------------------------------------------------ *)

(* [--suite serve]: the long-lived server against cold one-shot runs.
   An in-process server (real Unix socket, real wire protocol) is loaded
   by [clients] concurrent connections replaying a mixed request stream
   [rounds] times; every verdict must agree with a cold jobs=1 one-shot
   run of the same pair.  The server's edge is the shared warm state: from
   round two on, every request is answered from the shared cache/store
   instead of re-running the engines.  A final burst against a
   max_pending=0 server demonstrates deterministic load shedding.
   Writes BENCH_serve.json. *)

(* Nearest-rank (rank = ceil (q*n)) over a sorted sample.  The previous
   truncation index [int_of_float (n *. q)] overshot every exact-boundary
   quantile by one rank (p50 of [|1.; 2.|] came out 2.); nearest-rank is
   also the rank convention [Obs.Histogram.quantile] uses, so the exact
   and histogram percentiles below are comparable rank-for-rank. *)
let percentile sorted q = Obs.Histogram.nearest_rank sorted q

let serve_pairs () =
  let fifo ?bug ~entries style = Workloads.fifo ?bug ~entries ~width:8 ~style () in
  [
    ("fifo8x8", fifo ~entries:8 `Sop, fifo ~entries:8 `Mux);
    ("fifo16x8", fifo ~entries:16 `Sop, fifo ~entries:16 `Mux);
    ("minmax8", Workloads.minmax ~width:8, Workloads.minmax ~width:8);
    ("fifo8x8_bug", fifo ~entries:8 `Sop, fifo ~bug:true ~entries:8 `Mux);
  ]

let write_serve_json ~path ~pool_jobs ~executors ~clients ~rounds ~rows
    ~requests ~wall ~rps ~cold_rps ~p50 ~p95 ~p99 ~hp50 ~hp95 ~hp99
    ~completed ~shed ~metrics_count ~shed_requests ~shed_busy =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"suite\": \"serve\",\n";
  p "  \"pool_jobs\": %d,\n" pool_jobs;
  p "  \"executors\": %d,\n" executors;
  p "  \"clients\": %d,\n" clients;
  p "  \"rounds\": %d,\n" rounds;
  p "  \"rows\": [\n";
  List.iteri
    (fun i (name, sv, cv, cold_s) ->
      p
        "    {\"pair\": \"%s\", \"verdict\": \"%s\", \"verdict_jobs1\": \
         \"%s\", \"cold_oneshot_seconds\": %.6f}%s\n"
        (json_escape name) (json_escape sv) (json_escape cv) cold_s
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"requests\": %d,\n" requests;
  p "  \"warm_wall_seconds\": %.6f,\n" wall;
  p "  \"warm_throughput_rps\": %.3f,\n" rps;
  p "  \"cold_oneshot_rps\": %.3f,\n" cold_rps;
  p "  \"warm_over_cold\": %.3f,\n" (rps /. Float.max cold_rps 1e-9);
  p "  \"latency_p50_ms\": %.3f,\n" p50;
  p "  \"latency_p95_ms\": %.3f,\n" p95;
  p "  \"latency_p99_ms\": %.3f,\n" p99;
  p "  \"latency_hist_p50_ms\": %.3f,\n" hp50;
  p "  \"latency_hist_p95_ms\": %.3f,\n" hp95;
  p "  \"latency_hist_p99_ms\": %.3f,\n" hp99;
  p "  \"server_completed\": %d,\n" completed;
  p "  \"server_shed\": %d,\n" shed;
  p "  \"metrics_request_seconds_count\": %d,\n" metrics_count;
  p "  \"shed\": {\"requests\": %d, \"busy\": %d}\n" shed_requests shed_busy;
  p "}\n";
  close_out oc

let suite_serve ~jobs ~smoke () =
  pf "@.== Serve suite: warm shared-state server vs cold one-shot runs ==@.";
  let clients = 8 in
  let rounds = if smoke then 3 else 10 in
  let executors = 2 in
  let pairs = serve_pairs () in
  let exposed_of c =
    List.map (Circuit.signal_name c) (Feedback.plan_structural c).Feedback.exposed
  in
  (* cold baseline: every pair verified one-shot at jobs=1, fresh state *)
  pf "@.cold one-shot baseline (jobs=1, fresh caches):@.";
  let rows_cold =
    List.map
      (fun (name, c1, c2) ->
        let t0 = Unix.gettimeofday () in
        let o = check_outcome ~jobs:1 ~exposed:(exposed_of c1) c1 c2 in
        let dt = Unix.gettimeofday () -. t0 in
        pf "  %-12s %-5s %8.3fs@." name (verdict_str o.Verify.verdict) dt;
        (name, verdict_str o.Verify.verdict, dt))
      pairs
  in
  (* the server under load: [clients] connections replay the stream *)
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seqver_bench_%d.sock" (Unix.getpid ()))
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seqver_bench_store_%d" (Unix.getpid ()))
  in
  let cfg =
    {
      (Server.default_config ~socket_path:sock) with
      Server.executors;
      pool_jobs = jobs;
      cache_dir = Some dir;
    }
  in
  let t = Server.start cfg in
  let texts =
    List.map (fun (n, c1, c2) -> (n, Netlist_io.to_string c1, Netlist_io.to_string c2)) pairs
  in
  let sstr j k = Option.bind (Sjson.member k j) Sjson.get_string in
  let latencies = Array.make clients [] in
  let verdicts : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let vm = Mutex.create () in
  let wall0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let c = Server.Client.connect ~retries:50 sock in
            for _ = 1 to rounds do
              List.iter
                (fun (name, l, r) ->
                  let req =
                    Sjson.Obj
                      [
                        ("id", Sjson.Int ci);
                        ("op", Sjson.String "check");
                        ("left", Sjson.String l);
                        ("right", Sjson.String r);
                      ]
                  in
                  let t0 = Unix.gettimeofday () in
                  let resp = Server.Client.request c req in
                  let dt = Unix.gettimeofday () -. t0 in
                  latencies.(ci) <- dt :: latencies.(ci);
                  (* same samples into the live histogram, so the exact
                     and histogram percentiles below see one population
                     (server startup enabled Obs counters) *)
                  Obs.observe "bench.client_seconds" dt;
                  match sstr resp "verdict" with
                  | Some v ->
                      Mutex.lock vm;
                      Hashtbl.replace verdicts name v;
                      Mutex.unlock vm
                  | None -> ())
                texts
            done;
            Server.Client.close c)
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. wall0 in
  (* scrape the live telemetry before the server goes down: stats + the
     Prometheus exposition, to reconcile against the client-side tally *)
  let sint j k = Option.bind (Sjson.member k j) Sjson.get_int in
  let scrape = Server.Client.connect sock in
  let stats =
    Server.Client.request scrape
      (Sjson.Obj [ ("id", Sjson.Int 0); ("op", Sjson.String "stats") ])
  in
  let mresp =
    Server.Client.request scrape
      (Sjson.Obj [ ("id", Sjson.Int 0); ("op", Sjson.String "metrics") ])
  in
  Server.Client.close scrape;
  Server.stop t;
  let sobj = Option.value ~default:Sjson.Null (Sjson.member "server" stats) in
  let completed = Option.value ~default:(-1) (sint sobj "completed") in
  let shed = Option.value ~default:(-1) (sint sobj "shed") in
  let submitted = Option.value ~default:(-1) (sint sobj "checks") in
  let metric_value name =
    Option.value ~default:"" (sstr mresp "metrics")
    |> String.split_on_char '\n'
    |> List.find_map (fun line ->
           match String.index_opt line ' ' with
           | Some i when String.sub line 0 i = name ->
               float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
           | _ -> None)
  in
  let metrics_count =
    match metric_value "seqver_server_request_seconds_count" with
    | Some v -> int_of_float v
    | None -> -1
  in
  let hist = Obs.Histogram.find "bench.client_seconds" in
  let all = Array.of_list (List.concat (Array.to_list latencies)) in
  Array.sort compare all;
  let requests = Array.length all in
  let rps = float_of_int requests /. Float.max wall 1e-9 in
  (* the same stream served cold: every request pays its one-shot price *)
  let cold_stream =
    float_of_int (clients * rounds)
    *. List.fold_left (fun a (_, _, dt) -> a +. dt) 0. rows_cold
  in
  let cold_rps = float_of_int requests /. Float.max cold_stream 1e-9 in
  let ms q = 1000. *. percentile all q in
  let p50 = ms 0.50 and p95 = ms 0.95 and p99 = ms 0.99 in
  let hms q =
    match hist with
    | Some s -> 1000. *. Obs.Histogram.quantile s q
    | None -> 0.
  in
  let hp50 = hms 0.50 and hp95 = hms 0.95 and hp99 = hms 0.99 in
  pf "@.warm server (%d clients x %d rounds x %d pairs on %d executors, pool jobs=%d):@."
    clients rounds (List.length pairs) executors jobs;
  pf "  %d requests in %.3fs: %.1f req/s (cold one-shot equivalent: %.1f req/s, %.1fx)@."
    requests wall rps cold_rps (rps /. Float.max cold_rps 1e-9);
  pf "  latency (exact)     p50 %.1fms  p95 %.1fms  p99 %.1fms@." p50 p95 p99;
  pf "  latency (histogram) p50 %.1fms  p95 %.1fms  p99 %.1fms (bucket upper bounds)@."
    hp50 hp95 hp99;
  pf "  server accounting: %d submitted = %d completed + %d shed; \
      exposition _count %d@."
    submitted completed shed metrics_count;
  (* verdict agreement, server vs cold jobs=1 *)
  let short = function
    | "equivalent" -> "EQ"
    | "inequivalent" -> "NEQ"
    | _ -> "UNDEC"
  in
  let rows =
    List.map
      (fun (name, cv, dt) ->
        let sv =
          match Hashtbl.find_opt verdicts name with Some v -> short v | None -> "?"
        in
        (name, sv, cv, dt))
      rows_cold
  in
  List.iter
    (fun (name, sv, cv, _) -> pf "  %-12s server=%-5s jobs1=%-5s@." name sv cv)
    rows;
  (* deterministic shedding: a zero-capacity server sheds every check *)
  let sock2 = sock ^ ".shed" in
  let cfg2 =
    {
      (Server.default_config ~socket_path:sock2) with
      Server.executors = 1;
      pool_jobs = 1;
      max_pending = 0;
    }
  in
  let t2 = Server.start cfg2 in
  let c2 = Server.Client.connect ~retries:50 sock2 in
  let shed_requests = List.length texts in
  let shed_busy = ref 0 in
  List.iter
    (fun (_, l, r) ->
      let resp =
        Server.Client.request c2
          (Sjson.Obj
             [
               ("id", Sjson.Int 0);
               ("op", Sjson.String "check");
               ("left", Sjson.String l);
               ("right", Sjson.String r);
             ])
      in
      if sstr resp "reason" = Some "busy" then incr shed_busy)
    texts;
  Server.Client.close c2;
  Server.stop t2;
  pf "  shed burst: %d/%d checks shed busy at max_pending=0@." !shed_busy
    shed_requests;
  write_serve_json ~path:"BENCH_serve.json" ~pool_jobs:jobs ~executors ~clients
    ~rounds ~rows ~requests ~wall ~rps ~cold_rps ~p50 ~p95 ~p99 ~hp50 ~hp95
    ~hp99 ~completed ~shed ~metrics_count ~shed_requests ~shed_busy:!shed_busy;
  pf "wrote BENCH_serve.json@.";
  if smoke then begin
    let fails = ref [] in
    List.iter
      (fun (name, sv, cv, _) ->
        if sv <> cv then
          fails :=
            Printf.sprintf "%s: server verdict %s, jobs=1 one-shot %s" name sv
              cv
            :: !fails)
      rows;
    if requests <> clients * rounds * List.length pairs then
      fails :=
        Printf.sprintf "dropped responses: %d of %d" requests
          (clients * rounds * List.length pairs)
        :: !fails;
    (* the histogram view must agree with the exact sorted sample: same
       count, and each quantile within one bucket of the exact value
       (Obs.Histogram.quantile answers the upper bound of the bucket
       holding the rank-th sample) *)
    (match hist with
    | None -> fails := "no bench.client_seconds histogram" :: !fails
    | Some s ->
        if s.Obs.Histogram.count <> requests then
          fails :=
            Printf.sprintf "histogram count %d <> %d requests"
              s.Obs.Histogram.count requests
            :: !fails);
    List.iter
      (fun (label, exact_ms, hist_ms) ->
        let v = exact_ms /. 1000. in
        let _, hi = Obs.Histogram.bucket_bounds_of_value v in
        let h = hist_ms /. 1000. in
        if not (h >= v -. 1e-12 && h <= hi +. 1e-12) then
          fails :=
            Printf.sprintf
              "%s: histogram %.4fms not within one bucket of exact %.4fms \
               (bucket top %.4fms)"
              label hist_ms exact_ms (hi *. 1000.)
            :: !fails)
      [ ("p50", p50, hp50); ("p95", p95, hp95); ("p99", p99, hp99) ];
    (* server-side accounting must reconcile with the client-side tally
       and with the Prometheus exposition *)
    if completed + shed <> submitted then
      fails :=
        Printf.sprintf "accounting: completed %d + shed %d <> submitted %d"
          completed shed submitted
        :: !fails;
    if completed <> requests then
      fails :=
        Printf.sprintf "accounting: server completed %d <> %d client requests"
          completed requests
        :: !fails;
    if metrics_count <> completed then
      fails :=
        Printf.sprintf
          "metrics: seqver_server_request_seconds_count %d <> completed %d"
          metrics_count completed
        :: !fails;
    if !shed_busy <> shed_requests then
      fails :=
        Printf.sprintf "shed burst: %d/%d busy" !shed_busy shed_requests
        :: !fails;
    if rps < 2. *. cold_rps then
      fails :=
        Printf.sprintf "warm throughput %.1f req/s < 2x cold %.1f req/s" rps
          cold_rps
        :: !fails;
    match !fails with
    | [] ->
        pf "smoke: verdicts agree, %d/%d responses, warm %.1fx cold, shedding deterministic@."
          requests (clients * rounds * List.length pairs)
          (rps /. Float.max cold_rps 1e-9)
    | fs ->
        List.iter (fun f -> pf "SMOKE FAILURE: %s@." f) fs;
        exit 1
  end

(* ------------------------------------------------------------------ *)
(* Hier suite                                                          *)
(* ------------------------------------------------------------------ *)

(* [--suite hier]: compositional SEC on the hierarchical tier against the
   flat monolithic reference.  Every pair runs three ways: flat (flatten
   both designs, one Verify.check), cold compositional (fresh verdict
   store, every module pair checked leaf-first) and warm compositional
   (store reopened, every module pair answered from the log — zero engine
   runs).  Equivalent pairs additionally get a mutate-one-leaf warm
   rerun: one leaf of the right design is resynthesized (equivalence
   preserved, netlist signature changed), and the planner must re-check
   exactly that leaf's ancestor chain — the Obs counters pin the
   untouched modules to store hits.  Writes BENCH_hier.json. *)
type hr_record = {
  h_name : string;
  h_modules : int;  (* modules reachable from the top *)
  h_expected : string;
  h_expected_module : string;  (* offending module of `Neq rows, else "" *)
  h_flat_verdict : string;
  h_flat_seconds : float;
  h_cold : Hier.report;
  h_warm : Hier.report;
  h_warm_seconds : float;  (* best of two warm passes (noise floor) *)
  h_offending : string;  (* compositional attribution, "" when EQ *)
  (* mutate-one-leaf rerun, `Eq rows only:
     (leaf, chain = |invalidation set|, checked, store hits, verdict) *)
  h_mut : (string * int * int * int * string) option;
}

let hier_verdict_str = function
  | Hier.Equivalent -> "EQ"
  | Hier.Inequivalent _ -> "NEQ"
  | Hier.Undecided _ -> "UNDEC"

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let write_hier_json ~path ~jobs rows speedup detection =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"suite\": \"hier\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p "    {\"pair\": \"%s\", \"modules\": %d, \"expected\": \"%s\", "
        (json_escape r.h_name) r.h_modules (json_escape r.h_expected);
      p "\"expected_module\": \"%s\", " (json_escape r.h_expected_module);
      p "\"flat_verdict\": \"%s\", \"flat_seconds\": %.6f, "
        (json_escape r.h_flat_verdict) r.h_flat_seconds;
      p "\"cold_verdict\": \"%s\", \"cold_seconds\": %.6f, "
        (json_escape (hier_verdict_str r.h_cold.Hier.verdict))
        r.h_cold.Hier.seconds;
      p "\"cold_checked\": %d, \"cold_store_hits\": %d, \"cold_flat_fallbacks\": %d, "
        r.h_cold.Hier.checked r.h_cold.Hier.store_hits
        r.h_cold.Hier.flat_fallbacks;
      p "\"warm_seconds\": %.6f, \"warm_store_hits\": %d, \"warm_checked\": %d, "
        r.h_warm_seconds r.h_warm.Hier.store_hits r.h_warm.Hier.checked;
      p "\"warm_reuse_speedup\": %.3f, \"offending\": \"%s\""
        (r.h_cold.Hier.seconds /. Float.max r.h_warm_seconds 1e-9)
        (json_escape r.h_offending);
      (match r.h_mut with
      | Some (leaf, chain, checked, hits, v) ->
          p
            ", \"mutated_module\": \"%s\", \"mutated_chain\": %d, \
             \"mutated_checked\": %d, \"mutated_store_hits\": %d, \
             \"mutated_verdict\": \"%s\""
            (json_escape leaf) chain checked hits (json_escape v)
      | None -> ());
      p "}%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"warm_reuse_speedup\": %.3f,\n" speedup;
  p "  \"mutant_detection_rate\": %.3f\n" detection;
  p "}\n";
  close_out oc

let suite_hier ~jobs ~smoke () =
  pf "@.== Hier suite: compositional SEC vs flat monolithic ==@.";
  pf "(flat: flatten + one check; cold: per-module leaf-first, fresh store;@.";
  pf " warm: store reopened, all hits; mut: one leaf resynthesized, only@.";
  pf " its ancestor chain re-checked.)@.@.";
  pf "%-10s %4s | %-5s %8s | %-5s %8s | %8s %7s | %s@." "pair" "mods" "flat"
    "secs" "cold" "secs" "warm(s)" "speedup" "mut chain";
  pf "%s@." (String.make 86 '-');
  Obs.enable_counters ();
  let counter name snap = Option.value ~default:0 (List.assoc_opt name snap) in
  let delta name before after = counter name after - counter name before in
  let exposed_of c =
    List.map (Circuit.signal_name c) (Feedback.plan_structural c).Feedback.exposed
  in
  let store_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seqver-bench-hier-%d" (Unix.getpid ()))
  in
  let row (name, dl, dr, expected) =
    let dir = Filename.concat store_root name in
    let c1 = Hier.flatten dl and c2 = Hier.flatten dr in
    let flat =
      check_outcome ~jobs ~limits:Cec.default_limits ~exposed:(exposed_of c1) c1
        c2
    in
    let st = Store.open_ dir in
    let cold = Hier.check ~jobs ~store:st dl dr in
    Store.close st;
    (* a fresh handle on the same log: hits come from disk, not the run's
       in-memory table *)
    let st = Store.open_ dir in
    let warm = Hier.check ~jobs ~store:st dl dr in
    let warm2 = Hier.check ~jobs ~store:st dl dr in
    let warm_seconds = Float.min warm.Hier.seconds warm2.Hier.seconds in
    let mut =
      match expected with
      | `Neq _ -> None
      | `Eq ->
          (* resynthesize the leaf with the shortest ancestor chain, so the
             rerun leaves the most modules untouched *)
          let leaf, chain =
            List.fold_left
              (fun best (m : Hier.module_def) ->
                if m.Hier.instances <> [] then best
                else
                  let n =
                    List.length (Hier.invalidation_set dr m.Hier.mod_name)
                  in
                  match best with
                  | Some (_, bn) when bn <= n -> best
                  | _ -> Some (m.Hier.mod_name, n))
              None dr.Hier.modules
            |> Option.get
          in
          let dm = Hier.map_module dr ~name:leaf ~f:(Hier.resynthesize ~seed:23) in
          let before = Obs.Counters.snapshot () in
          let r = Hier.check ~jobs ~store:st dl dm in
          let after = Obs.Counters.snapshot () in
          let checked = delta "hier.module_checked" before after in
          let hits = delta "hier.module_store_hits" before after in
          Some (leaf, chain, checked, hits, hier_verdict_str r.Hier.verdict)
    in
    Store.close st;
    rm_rf dir;
    let expected_str, expected_module =
      match expected with `Eq -> ("EQ", "") | `Neq m -> ("NEQ", m)
    in
    let offending =
      match cold.Hier.verdict with
      | Hier.Inequivalent { offending; _ } -> offending
      | _ -> ""
    in
    let r =
      {
        h_name = name;
        h_modules = List.length (Hier.module_order dl);
        h_expected = expected_str;
        h_expected_module = expected_module;
        h_flat_verdict = verdict_str flat.Verify.verdict;
        h_flat_seconds = flat.Verify.stats.Verify.seconds;
        h_cold = cold;
        h_warm = warm;
        h_warm_seconds = warm_seconds;
        h_offending = offending;
        h_mut = mut;
      }
    in
    pf "%-10s %4d | %-5s %7.3fs | %-5s %7.3fs | %7.4fs %6.2fx | %s@." name
      r.h_modules r.h_flat_verdict r.h_flat_seconds
      (hier_verdict_str cold.Hier.verdict)
      cold.Hier.seconds warm_seconds
      (cold.Hier.seconds /. Float.max warm_seconds 1e-9)
      (match mut with
      | Some (leaf, chain, checked, hits, v) ->
          Printf.sprintf "%s: %d re-checked, %d hits, %s" leaf chain hits v
          |> fun s -> if checked = chain then s else s ^ " (!)"
      | None -> Printf.sprintf "NEQ at %s" offending);
    r
  in
  let rows = List.map row (Workloads.hier_suite ()) in
  pf "%s@." (String.make 86 '-');
  let speedup =
    geomean
      (List.map
         (fun r -> r.h_cold.Hier.seconds /. Float.max r.h_warm_seconds 1e-9)
         rows)
  in
  let neq_rows = List.filter (fun r -> r.h_expected = "NEQ") rows in
  let detection =
    match neq_rows with
    | [] -> 1.
    | _ ->
        float_of_int
          (List.length
             (List.filter (fun r -> r.h_offending = r.h_expected_module) neq_rows))
        /. float_of_int (List.length neq_rows)
  in
  pf "warm_reuse_speedup (geomean cold/warm over %d pairs): %.2fx@."
    (List.length rows) speedup;
  pf "mutant_detection_rate: %.0f%% (%d/%d attributed to the right module)@."
    (100. *. detection)
    (List.length (List.filter (fun r -> r.h_offending = r.h_expected_module) neq_rows))
    (List.length neq_rows);
  write_hier_json ~path:"BENCH_hier.json" ~jobs rows speedup detection;
  pf "wrote BENCH_hier.json@.";
  if smoke then begin
    let fails = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
    List.iter
      (fun r ->
        if r.h_flat_verdict <> r.h_expected then
          fail "%s: flat verdict %s (want %s)" r.h_name r.h_flat_verdict
            r.h_expected;
        if hier_verdict_str r.h_cold.Hier.verdict <> r.h_flat_verdict then
          fail "%s: compositional %s disagrees with flat %s" r.h_name
            (hier_verdict_str r.h_cold.Hier.verdict)
            r.h_flat_verdict;
        if r.h_cold.Hier.flat_fallbacks <> 0 then
          fail "%s: %d flat fallbacks on a designed-compositional pair"
            r.h_name r.h_cold.Hier.flat_fallbacks;
        if r.h_expected = "NEQ" && r.h_offending <> r.h_expected_module then
          fail "%s: counterexample attributed to %S (want %S)" r.h_name
            r.h_offending r.h_expected_module;
        if hier_verdict_str r.h_warm.Hier.verdict
           <> hier_verdict_str r.h_cold.Hier.verdict
        then
          fail "%s: warm verdict %s <> cold %s" r.h_name
            (hier_verdict_str r.h_warm.Hier.verdict)
            (hier_verdict_str r.h_cold.Hier.verdict);
        if r.h_warm.Hier.checked <> 0 then
          fail "%s: warm rerun re-checked %d module pairs (want 0)" r.h_name
            r.h_warm.Hier.checked;
        if r.h_warm.Hier.store_hits <> List.length r.h_warm.Hier.modules then
          fail "%s: warm rerun %d/%d store hits" r.h_name
            r.h_warm.Hier.store_hits
            (List.length r.h_warm.Hier.modules);
        match r.h_mut with
        | None -> ()
        | Some (leaf, chain, checked, hits, v) ->
            if v <> "EQ" then
              fail "%s: resynthesized %s rerun verdict %s (want EQ)" r.h_name
                leaf v;
            if checked <> chain then
              fail
                "%s: mutated-%s rerun checked %d module pairs (want the \
                 %d-module ancestor chain)"
                r.h_name leaf checked chain;
            if hits <> r.h_modules - chain then
              fail
                "%s: mutated-%s rerun %d store hits (want the %d untouched \
                 modules)"
                r.h_name leaf hits (r.h_modules - chain))
      rows;
    if speedup <= 1. then fail "warm_reuse_speedup %.2f <= 1" speedup;
    if detection < 1. then fail "mutant_detection_rate %.2f < 1" detection;
    match !fails with
    | [] ->
        pf
          "smoke: compositional agrees with flat on %d pairs, warm reruns all \
           store hits (%.2fx), mutants attributed correctly@."
          (List.length rows) speedup
    | fs ->
        List.iter (fun f -> pf "SMOKE FAILURE: %s@." f) fs;
        exit 1
  end

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  pf "@.== Table 2: latches exposed for the industrial-style circuits ==@.";
  pf "(structural = the paper's experiment; functional = the unateness-aware@.";
  pf " analysis the paper predicts 'would lead to reduced numbers'.)@.@.";
  pf "%-8s %9s %12s %12s %11s@." "example" "# latches" "# structural" "# functional"
    "# converted";
  pf "%s@." (String.make 56 '-');
  List.iter
    (fun (name, c) ->
      let total = Circuit.latch_count c in
      let s = List.length (Feedback.plan_structural c).Feedback.exposed in
      let fplan = Feedback.plan_functional c in
      pf "%-8s %9d %12d %12d %11d@." name total s
        (List.length fplan.Feedback.exposed)
        (List.length fplan.Feedback.converted))
    (Workloads.table2_suite ())

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  let a = Circuit.create "fig1a" in
  let d = Circuit.add_input a "d" in
  let q = Circuit.add_latch a ~data:d () in
  Circuit.mark_output a (Circuit.add_gate a Xor [ q; q ]);
  Circuit.check a;
  let b = Circuit.create "fig1b" in
  ignore (Circuit.add_input b "d");
  Circuit.mark_output b (Circuit.const_false b);
  Circuit.check b;
  let t3 = Sim.run_3v a ~inputs:[ [| true |] ] in
  let naive_differs = not (Sim.tv_equal (List.hd t3).(0) Sim.F) in
  let exact_equal = check_verdict a b = Verify.Equivalent in
  pf "Fig. 1:  naive 3-valued sim differs: %b; exact/CBF equivalent: %b  %s@."
    naive_differs exact_equal
    (if naive_differs && exact_equal then "[reproduced]" else "[MISMATCH]")

let fig10_pair collapse name =
  let c = Circuit.create name in
  let x = Circuit.add_input c "x" in
  let a = Circuit.add_input c "a" in
  let b = Circuit.add_input c "b" in
  let ab = Circuit.add_gate c And [ a; b ] in
  if collapse then Circuit.mark_output c (Circuit.add_latch c ~enable:ab ~data:x ())
  else begin
    let l1 = Circuit.add_latch c ~enable:a ~data:x () in
    Circuit.mark_output c (Circuit.add_latch c ~enable:ab ~data:l1 ())
  end;
  Circuit.check c;
  c

let fig10 () =
  let fneg =
    check_verdict ~rewrite_events:false (fig10_pair false "a") (fig10_pair true "b")
    <> Verify.Equivalent
  in
  let fixed =
    check_verdict (fig10_pair false "a2") (fig10_pair true "b2") = Verify.Equivalent
  in
  pf "Fig. 10: false negative without rule (5): %b; fixed with it: %b  %s@." fneg fixed
    (if fneg && fixed then "[reproduced]" else "[MISMATCH]")

let fig11 () =
  let mk data_kind =
    let c = Circuit.create ("f11" ^ data_kind) in
    let a = Circuit.add_input c "a" in
    let b = Circuit.add_input c "b" in
    let ab = Circuit.add_gate c Or [ a; b ] in
    let data = if data_kind = "b" then b else ab in
    Circuit.mark_output c (Circuit.add_latch c ~enable:ab ~data ());
    Circuit.check c;
    c
  in
  let conservative =
    match check_verdict (mk "b") (mk "ab") with
    | Verify.Inequivalent None -> true
    | _ -> false
  in
  pf "Fig. 11: event/data interaction stays a conservative rejection: %b  %s@."
    conservative
    (if conservative then "[reproduced]" else "[MISMATCH]")

let fig6 () =
  pf "Fig. 6:  pipeline retiming gains (min-period vs synth-only):@.";
  List.iter
    (fun imbalance ->
      let c =
        Workloads.pipeline
          ~name:(Printf.sprintf "p_i%d" imbalance)
          ~width:8 ~stages:6 ~imbalance ~seed:42
      in
      let d = Synth_script.delay_script c in
      let _, rep = Retime.min_period d in
      pf "         imbalance %d: D period %2d -> C period %2d (%.0f%% faster)@." imbalance
        rep.Retime.period_before rep.Retime.period_after
        (100.
        *. float_of_int (rep.Retime.period_before - rep.Retime.period_after)
        /. float_of_int (max 1 rep.Retime.period_before)))
    [ 1; 2; 4; 8 ]

let fig18 () =
  pf "Fig. 18: CBF unrolled-circuit sizes (cone replication):@.";
  List.iter
    (fun name ->
      let c = Workloads.by_name name in
      let plan = Feedback.plan_structural c in
      let names = List.map (Circuit.signal_name c) plan.Feedback.exposed in
      let exposed s = List.mem (Circuit.signal_name c s) names in
      let u, info = Cbf.unroll_netlist ~exposed c in
      (* and the shared-AIG size the engines actually see *)
      let b = Seqprob.builder () in
      let aig_nodes =
        match Cbf.unroll ~exposed b c with
        | Ok _ -> Aig.and_count (Seqprob.graph b)
        | Error _ -> -1
      in
      pf "         %-9s gates %5d -> unrolled %6d netlist / %6d AIG nodes (depth %d, %d variables)@."
        name (Circuit.area c) (Circuit.area u) aig_nodes info.Cbf.depth
        info.Cbf.variables)
    [ "s953"; "s1269"; "s3384"; "minmax10"; "minmax32" ]

let fig16 () =
  (* enabled-latch forward move across a gate (class-preserving) *)
  let c = Circuit.create "fig16" in
  let d1 = Circuit.add_input c "d1" in
  let d2 = Circuit.add_input c "d2" in
  let e = Circuit.add_input c "e" in
  let q1 = Circuit.add_latch c ~enable:e ~data:d1 () in
  let q2 = Circuit.add_latch c ~enable:e ~data:d2 () in
  let g = Circuit.add_gate c And [ q1; q2 ] in
  Circuit.mark_output c g;
  Circuit.check c;
  let legal = Classes.can_forward_move c ~gate:g in
  let moved = Classes.forward_move c ~gate:g in
  let still_ok = check_verdict c (Synth_script.quick_cleanup moved) in
  pf "Fig. 16: same-class forward move legal: %b; EDBF-verified after move: %b@." legal
    (still_ok = Verify.Equivalent)

let figs () =
  pf "@.== Figure reproductions ==@.";
  fig1 ();
  fig10 ();
  fig11 ();
  fig16 ();
  fig6 ();
  fig18 ()

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let ablation_cec () =
  pf "@.== Ablation: CEC engine on the unrolled miters ==@.";
  pf "%-10s %10s %10s %10s@." "circuit" "bdd" "sat" "sweep";
  List.iter
    (fun name ->
      let c = Workloads.by_name name in
      let b, copt = ok "flow" (Flow.circuits c) in
      let plan = Feedback.plan_structural c in
      let names = List.map (Circuit.signal_name c) plan.Feedback.exposed in
      let ex cc s = List.mem (Circuit.signal_name cc s) names in
      let bld = Seqprob.builder () in
      let o1, _ = ok "unroll" (Cbf.unroll ~exposed:(ex b) bld b) in
      let o2, _ = ok "unroll" (Cbf.unroll ~exposed:(ex copt) bld copt) in
      let p = ok "problem" (Seqprob.problem bld ~outs1:o1 ~outs2:o2) in
      let run engine =
        let v, t = time (fun () -> Cec.check_problem ~engine p) in
        (match v with
        | Cec.Equivalent -> ()
        | Cec.Inequivalent _ -> pf "NEQ?!"
        | Cec.Undecided _ -> pf "UNDEC?!");
        t
      in
      let tb = run Cec.Bdd_engine in
      let ts = run Cec.Sat_engine in
      let tw = run Cec.Sweep_engine in
      pf "%-10s %9.3fs %9.3fs %9.3fs@." name tb ts tw)
    [ "s400"; "s953"; "s1269"; "minmax10"; "minmax12" ]

let ablation_rewrite () =
  pf "@.== Ablation: rule-(5) event rewrite (Fig. 10 class) ==@.";
  let fneg = ref 0 and fixed = ref 0 in
  let n = 10 in
  for i = 1 to n do
    let a = fig10_pair false (Printf.sprintf "ra%d" i) in
    let b = fig10_pair true (Printf.sprintf "rb%d" i) in
    if check_verdict ~rewrite_events:false a b <> Verify.Equivalent then incr fneg;
    if check_verdict a b = Verify.Equivalent then incr fixed
  done;
  pf "without rule (5): %d/%d false negatives@." !fneg n;
  pf "with rule (5):    %d/%d proven equivalent@." !fixed n

let ablation_synth_rewrite () =
  pf "@.== Ablation: cut-based AIG rewriting in the synthesis script ==@.";
  pf "%-10s %14s %14s %10s@." "circuit" "area(balance)" "area(+rewrite)" "saving";
  List.iter
    (fun name ->
      let c = Workloads.by_name name in
      let base = Synth_script.delay_script c in
      let opts = { Synth_script.default_options with rewrite = true } in
      let rw = Synth_script.delay_script ~options:opts c in
      (* sanity: still equivalent *)
      (match Cec.check (Comb_view.of_sequential base) (Comb_view.of_sequential rw) with
      | Cec.Equivalent -> ()
      | Cec.Inequivalent _ | Cec.Undecided _ -> pf "REWRITE BUG on %s!@." name);
      let a0 = Circuit.area base and a1 = Circuit.area rw in
      pf "%-10s %14d %14d %9.1f%%@." name a0 a1
        (100. *. float_of_int (a0 - a1) /. float_of_int (max 1 a0)))
    [ "s400"; "s953"; "s1269"; "prolog"; "minmax10" ]

let ablation_guard () =
  pf "@.== Ablation: event-consistency guard (beyond the published method) ==@.";
  (* data functions that differ only where the enable is false *)
  let mk variant i =
    let c = Circuit.create (Printf.sprintf "gd%s%d" variant i) in
    let a = Circuit.add_input c "a" in
    let b = Circuit.add_input c "b" in
    let ab = Circuit.add_gate c Or [ a; b ] in
    let data =
      if variant = "plain" then b
      else Circuit.add_gate c Or [ b; Circuit.add_gate c Not [ ab ] ]
    in
    Circuit.mark_output c (Circuit.add_latch c ~enable:ab ~data ());
    Circuit.check c;
    c
  in
  let n = 10 in
  let without = ref 0 and with_g = ref 0 in
  for i = 1 to n do
    if check_verdict (mk "plain" i) (mk "dc" i) <> Verify.Equivalent then incr without;
    if check_verdict ~guard_events:true (mk "plain" i) (mk "dc" i) = Verify.Equivalent
    then incr with_g
  done;
  pf "published method:            %d/%d false negatives@." !without n;
  pf "with event-consistency guard: %d/%d proven equivalent@." !with_g n

let ablation_dchoice () =
  pf "@.== Ablation: d-choice in the feedback decomposition ==@.";
  pf "(the same circuit's conditional registers converted with the two@.";
  pf " d-choices; mixed choices can diverge when [F0, F1] is not a point.)@.@.";
  let st = Random.State.make [| 314 |] in
  let mk i =
    Workloads.fsm_datapath
      ~name:(Printf.sprintf "dc%d" i)
      ~latches:14 ~self_loops:6 ~gates:120 ~width:6
      ~seed:(Random.State.int st 10000)
  in
  let run d1 d2 =
    let agree = ref 0 and total = ref 0 in
    for i = 1 to 10 do
      let c = mk i in
      let plan = Feedback.plan_functional c in
      if plan.Feedback.converted <> [] then begin
        incr total;
        let c1 = Feedback.apply_plan ~dchoice:d1 c plan in
        let c2 = Feedback.apply_plan ~dchoice:d2 c plan in
        let exposed = List.map (Circuit.signal_name c) plan.Feedback.exposed in
        if check_verdict ~exposed c1 c2 = Verify.Equivalent then incr agree
      end
    done;
    (!agree, !total)
  in
  let a1, t1 = run Feedback.D_low Feedback.D_low in
  pf "D_low  vs D_low:   %d/%d verified equivalent@." a1 t1;
  let a2, t2 = run Feedback.D_disjoint Feedback.D_disjoint in
  pf "D_disj vs D_disj:  %d/%d verified equivalent@." a2 t2;
  let a3, t3 = run Feedback.D_low Feedback.D_disjoint in
  pf "D_low  vs D_disj:  %d/%d verified equivalent (divergence = Fig. 11 class)@." a3 t3

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                 *)
(* ------------------------------------------------------------------ *)

(* The paper's observation 3: "for only few of these sequential circuits
   the state-space can be traversed, and for fewer yet the state-space of
   the product machine" — we race the classical symbolic-traversal checker
   against the combinational reduction on B-vs-C pairs of growing size. *)
let baseline () =
  pf "@.== Baseline: product-machine traversal vs combinational reduction ==@.";
  pf "(Pipelined circuits, where the baseline's reset equivalence and the@.";
  pf " paper's exact 3-valued equivalence coincide after the flush.)@.@.";
  pf "%-22s %8s | %12s %16s | %12s@." "circuit" "latches" "traversal" "(result)"
    "reduction";
  pf "%s@." (String.make 80 '-');
  let budget = 400_000 in
  List.iter
    (fun (name, width, stages) ->
      let c = Workloads.pipeline ~name ~width ~stages ~imbalance:3 ~seed:(Hashtbl.hash name) in
      let b, copt = ok "flow" (Flow.circuits c) in
      let (bv, bstats) = Sec_baseline.check ~node_limit:budget b copt in
      let bres =
        match bv with
        | Sec_baseline.Equivalent -> "EQ"
        | Sec_baseline.Inequivalent -> "NEQ"
        | Sec_baseline.Resource_out _ -> "gave up"
      in
      let o = check_outcome b copt in
      let rres =
        match o.Verify.verdict with
        | Verify.Equivalent -> "EQ"
        | Verify.Inequivalent _ -> "NEQ"
        | Verify.Undecided _ -> "UNDEC"
      in
      pf "%-22s %8d | %10.3fs %-16s | %10.3fs %s@." name (Circuit.latch_count c)
        bstats.Sec_baseline.seconds
        (Printf.sprintf "(%s, %d st)" bres (int_of_float bstats.Sec_baseline.product_states))
        o.Verify.stats.Verify.seconds rres)
    [ ("pipe4x3", 4, 3); ("pipe6x3", 6, 3); ("pipe8x4", 8, 4); ("pipe10x4", 10, 4);
      ("pipe12x5", 12, 5); ("pipe16x6", 16, 6) ];
  (* The two notions differ on power-up-sensitive feedback state: the
     traversal checks reset equivalence from the all-zero state, under
     which a retimed circuit's transient can poison exposed feedback
     registers forever; the paper's exact 3-valued semantics marks those
     outputs undefined in BOTH circuits.  Demonstrate on an FSM circuit: *)
  let c =
    Workloads.fsm_datapath ~name:"fsm8" ~latches:8 ~self_loops:2 ~gates:48
      ~width:6 ~seed:(Hashtbl.hash "fsm8")
  in
  let b, copt = ok "flow" (Flow.circuits c) in
  let plan = Feedback.plan_structural c in
  let names = List.map (Circuit.signal_name c) plan.Feedback.exposed in
  let bv, _ = Sec_baseline.check ~node_limit:budget b copt in
  let rv = check_verdict ~exposed:names b copt in
  pf "@.semantic gap (feedback + power-up): traversal(reset-eq) = %s, reduction(exact-3v) = %s@."
    (match bv with
    | Sec_baseline.Equivalent -> "EQ"
    | Sec_baseline.Inequivalent -> "NEQ"
    | Sec_baseline.Resource_out _ -> "gave up")
    (match rv with
    | Verify.Equivalent -> "EQ"
    | Verify.Inequivalent _ -> "NEQ"
    | Verify.Undecided _ -> "UNDEC")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  pf "@.== Micro-benchmarks (bechamel, median ns/run) ==@.";
  let open Bechamel in
  let open Toolkit in
  let c953 = Workloads.by_name "s953" in
  let plan = Feedback.plan_structural c953 in
  let names = List.map (Circuit.signal_name c953) plan.Feedback.exposed in
  let expose cc s = List.mem (Circuit.signal_name cc s) names in
  let b, copt = ok "flow" (Flow.circuits c953) in
  let problem =
    let bld = Seqprob.builder () in
    let o1, _ = ok "unroll" (Cbf.unroll ~exposed:(expose b) bld b) in
    let o2, _ = ok "unroll" (Cbf.unroll ~exposed:(expose copt) bld copt) in
    ok "problem" (Seqprob.problem bld ~outs1:o1 ~outs2:o2)
  in
  let synth953 = Synth_script.delay_script c953 in
  let tests =
    Test.make_grouped ~name:"seqver"
      [
        Test.make ~name:"t1/expose-mfvs-s953"
          (Staged.stage (fun () -> ignore (Feedback.plan_structural c953)));
        Test.make ~name:"t1/synth-script-s953"
          (Staged.stage (fun () -> ignore (Synth_script.delay_script c953)));
        Test.make ~name:"t1/retime-minperiod-s953"
          (Staged.stage (fun () ->
               ignore (Retime.min_period ~exposed:(expose synth953) synth953)));
        Test.make ~name:"t1/unroll-cbf-s953"
          (Staged.stage (fun () ->
               let bld = Seqprob.builder () in
               ignore (Cbf.unroll ~exposed:(expose b) bld b)));
        Test.make ~name:"t1/cec-sweep-s953"
          (Staged.stage (fun () ->
               ignore (Cec.check_problem ~engine:Cec.Sweep_engine problem)));
        Test.make ~name:"t1/cec-bdd-s953"
          (Staged.stage (fun () ->
               ignore (Cec.check_problem ~engine:Cec.Bdd_engine problem)));
        Test.make ~name:"t2/exposure-ex3"
          (Staged.stage (fun () ->
               ignore (Feedback.plan_functional (Workloads.by_name "ex3"))));
        (* the disabled-sink cost of an instrumentation site: one atomic
           load per emitter (the number quoted in DESIGN.md) *)
        Test.make ~name:"obs/span-disabled"
          (Staged.stage (fun () -> Obs.span ~name:"bench" (fun () -> ())));
        Test.make ~name:"obs/count-disabled"
          (Staged.stage (fun () -> Obs.count "bench" 1));
        Test.make ~name:"obs/observe-disabled"
          (Staged.stage (fun () -> Obs.observe "bench" 1.0));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) tbl [] in
      List.iter
        (fun (name, r) ->
          match Analyze.OLS.estimates r with
          | Some [ est ] -> pf "%-32s %14.0f ns/run@." name est
          | Some _ | None -> pf "%-32s (no estimate)@." name)
        (List.sort compare rows))
    results

(* [--micro-obs]: the disabled-site cost gate.  A histogram site compiled
   into hot code ([Par] worker wrap, [Cec.run_one]) must stay as close to
   free as a disabled span when counters are off — one atomic load and a
   branch.  Measured with a plain best-of-5 loop rather than bechamel so
   the [--smoke] gate is a single comparable number. *)

let micro_obs ~smoke () =
  pf "@.== Obs disabled-site cost ==@.";
  let iters = 2_000_000 in
  let time f =
    for _ = 1 to 100_000 do f () done;
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do f () done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best /. float_of_int iters *. 1e9
  in
  let span_ns = time (fun () -> Obs.span ~name:"bench" (fun () -> ())) in
  let observe_ns = time (fun () -> Obs.observe "bench" 1.0) in
  pf "  span-disabled    %6.2f ns/site@." span_ns;
  pf "  observe-disabled %6.2f ns/site@." observe_ns;
  if smoke then begin
    (* relative gate with an absolute floor so a noisy box cannot fail on
       a sub-nanosecond delta between two ~5ns sites *)
    let budget = Float.max (2. *. span_ns) (span_ns +. 15.) in
    if observe_ns > budget then begin
      pf "SMOKE FAILURE: observe-disabled %.2f ns > budget %.2f ns \
          (max of 2x span-disabled and span + 15ns)@."
        observe_ns budget;
      exit 1
    end
    else
      pf "smoke: observe-disabled %.2f ns within budget %.2f ns@." observe_ns
        budget
  end

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let rec opt_str flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: tl -> opt_str flag tl
    | [] -> None
  in
  let suite_arg = opt_str "--suite" args in
  let any =
    has "--table1" || has "--table2" || has "--figs" || has "--micro"
    || has "--micro-obs" || has "--baseline" || has "--ablation-cec"
    || has "--ablation-rewrite" || has "--ablation-guard"
    || has "--ablation-synth" || has "--ablation-dchoice"
    || suite_arg <> None
  in
  let full = has "--full" in
  let smoke = has "--smoke" in
  let jobs =
    (* "auto" asks the runtime for the machine's domain count; the layout
       caps each check's pool at its bin count anyway *)
    match opt_str "--jobs" args with
    | Some "auto" -> Par.cpu_count ()
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> max 1 n
        | None -> failwith (Printf.sprintf "bad --jobs %s (expected N or auto)" s))
    | None -> 1
  in
  let cache_dir = opt_str "--cache-dir" args in
  let trace = opt_str "--trace" args in
  Option.iter (fun _ -> Obs.enable ()) trace;
  (match suite_arg with
  | Some "retime" -> suite_retime ~jobs ~smoke ()
  | Some "large" -> suite_large ~jobs ~smoke ()
  | Some "serve" -> suite_serve ~jobs ~smoke ()
  | Some "hier" -> suite_hier ~jobs ~smoke ()
  | Some s ->
      failwith
        (Printf.sprintf
           "unknown --suite %s (expected: retime, large, serve, hier)" s)
  | None -> ());
  if (not any) || has "--table1" then table1 ~full ~jobs ~smoke ~cache_dir ();
  if (not any) || has "--table2" then table2 ();
  if (not any) || has "--figs" then figs ();
  if (not any) || has "--baseline" then baseline ();
  if (not any) || has "--ablation-cec" then ablation_cec ();
  if (not any) || has "--ablation-rewrite" then ablation_rewrite ();
  if (not any) || has "--ablation-guard" then ablation_guard ();
  if (not any) || has "--ablation-synth" then ablation_synth_rewrite ();
  if (not any) || has "--ablation-dchoice" then ablation_dchoice ();
  if (not any) || has "--micro" then micro ();
  if (not any) || has "--micro-obs" then micro_obs ~smoke ();
  match trace with
  | Some path ->
      let oc = open_out path in
      Obs.Chrome.write oc (Obs.collect ());
      close_out oc;
      pf "wrote trace %s@." path
  | None -> ()
