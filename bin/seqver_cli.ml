(* seqver: command-line driver for the sequential-verification library.

   Netlists are read and written in the textual format of Netlist_io (see
   its documentation); suite circuits can be referenced as "@name" (e.g.
   "@minmax10" or "@s953") instead of a file. *)

open Cmdliner

let is_blif path = Filename.check_suffix path ".blif"

let load path =
  if String.length path > 0 && path.[0] = '@' then
    match Workloads.lookup (String.sub path 1 (String.length path - 1)) with
    | Ok c -> c
    | Error msg ->
        Format.eprintf "error: %s@." msg;
        exit 1
  else begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    if is_blif path then begin
      let { Blif.circuit; warnings } = Blif.parse text in
      List.iter (fun w -> Format.eprintf "warning: %s@." w) warnings;
      circuit
    end
    else Netlist_io.parse text
  end

let save path c =
  let oc = open_out path in
  output_string oc (if is_blif path then Blif.to_string c else Netlist_io.to_string c);
  close_out oc

let circuit_arg ~pos:p ~doc =
  Arg.(required & pos p (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let engine_arg =
  let engine_conv =
    Arg.enum [ ("sweep", Cec.Sweep_engine); ("sat", Cec.Sat_engine); ("bdd", Cec.Bdd_engine) ]
  in
  Arg.(
    value
    & opt engine_conv Cec.Sweep_engine
    & info [ "engine" ] ~docv:"ENGINE" ~doc:"Combinational engine: sweep, sat or bdd.")

let exposed_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "exposed" ] ~docv:"NAMES"
        ~doc:"Comma-separated latch names to expose (pseudo primary I/O).")

let jobs_arg =
  (* plain N, or "auto" = Domain.recommended_domain_count () — the layout
     caps the pool at its bin count per check, so "auto" never oversubscribes
     a small problem *)
  let jobs_conv =
    let parse = function
      | "auto" -> Ok (Par.cpu_count ())
      | s -> (
          match int_of_string_opt s with
          | Some n when n >= 1 -> Ok n
          | Some _ | None ->
              Error (`Msg (Printf.sprintf "bad jobs value %S (expected N >= 1 or auto)" s)))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker-domain cap for the combinational check, or $(b,auto) for \
           the machine's recommended domain count.  With N > 1 a problem \
           whose estimated cost clears the layout threshold is partitioned \
           into cost-balanced bins and checked in parallel (never more \
           domains than bins); small problems and $(b,--jobs 1) keep the \
           monolithic single-domain check.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per miter partition.  A partition that cannot \
           be decided in time (after escalating through the engine ladder) \
           reports UNDECIDED instead of running forever.")

let sat_conflicts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sat-conflicts" ] ~docv:"N"
        ~doc:
          "Base conflict budget per SAT call; a blown budget escalates \
           (larger-budget SAT, then BDDs) before reporting UNDECIDED.")

(* With neither flag the engines run unbounded (the historical behavior);
   either flag opts into the default ladder with the given caps. *)
let limits_of timeout sat_conflicts =
  match (timeout, sat_conflicts) with
  | None, None -> Cec.no_limits
  | _ ->
      {
        Cec.default_limits with
        Cec.seconds = timeout;
        sat_conflicts =
          (match sat_conflicts with
          | None -> Cec.default_limits.Cec.sat_conflicts
          | some -> some);
      }

(* ---- persistent verdict store (shared by verify and flow) ---- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent verdict-store directory, shared across runs and \
           across concurrent seqver processes.  Structurally identical \
           miter partitions proven in any earlier run are answered from \
           the store (counted as store hits in the cec stats line); new \
           verdicts are appended write-through.  Manage the directory with \
           $(b,seqver cache).")

(* A corrupt store must never fail the run: Store.open_ quarantines and
   cold-starts, we just tell the user where the damaged file went. *)
let open_store dir =
  let st = Store.open_ dir in
  (match (Store.info st).Store.quarantined_to with
  | Some q ->
      Format.eprintf
        "warning: corrupt verdict store quarantined to %s; starting cold@." q
  | None -> ());
  st

(* ---- observability (shared by verify and flow) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run (spans for every \
           pipeline stage, miter partition and SAT call).  Load it in \
           Perfetto (ui.perfetto.dev) or chrome://tracing.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose" ]
        ~doc:"Print live per-stage progress on standard error.")

let obs_stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "After the run, print a span-tree summary (per-phase self/total \
           times and counters).")

(* Live progress printer: begin/end lines for the coarse pipeline spans,
   written from the emitting domain (the hook is synchronous). *)
let live_hook () =
  let interesting name =
    List.exists
      (fun p -> String.starts_with ~prefix:p name)
      [ "flow."; "verify."; "unroll."; "cec.check"; "cec.partition" ]
  in
  let m = Mutex.create () in
  (* per-(domain, name) begin-time stacks, so End events get a duration *)
  let began : (int * string, float list) Hashtbl.t = Hashtbl.create 16 in
  let t0 = ref None in
  fun (e : Obs.event) ->
    match e with
    | Obs.Begin { name; t; dom; _ } when interesting name ->
        Mutex.lock m;
        let rel = match !t0 with Some r -> t -. r | None -> t0 := Some t; 0. in
        let st = Option.value ~default:[] (Hashtbl.find_opt began (dom, name)) in
        Hashtbl.replace began (dom, name) (t :: st);
        Printf.eprintf "[%7.3fs d%d] > %s\n%!" rel dom name;
        Mutex.unlock m
    | Obs.End { name; t; dom; _ } when interesting name ->
        Mutex.lock m;
        let rel = match !t0 with Some r -> t -. r | None -> 0. in
        (match Hashtbl.find_opt began (dom, name) with
        | Some (b :: rest) ->
            Hashtbl.replace began (dom, name) rest;
            Printf.eprintf "[%7.3fs d%d] < %s (%.3fs)\n%!" rel dom name (t -. b)
        | _ -> Printf.eprintf "[%7.3fs d%d] < %s\n%!" rel dom name);
        Mutex.unlock m
    | _ -> ()

(* Enables the sink when any observability flag is given; the returned
   [finish] writes the requested outputs and must run before [exit] on
   every path (including error exits, so partial traces still land). *)
let obs_setup ~trace ~verbose ~stats =
  let wanted = trace <> None || verbose || stats in
  if wanted then begin
    Obs.enable ();
    if verbose then Obs.set_hook (Some (live_hook ()))
  end;
  fun () ->
    if wanted then begin
      Obs.set_hook None;
      let events = Obs.collect () in
      (match trace with
      | Some path ->
          let oc = open_out path in
          Obs.Chrome.write oc events;
          close_out oc;
          Format.eprintf "trace written to %s (open in ui.perfetto.dev)@." path
      | None -> ());
      if stats then Format.printf "%a@." Obs.Summary.pp events;
      Obs.disable ()
    end

(* ---- stats ---- *)

let stats_cmd =
  let run path =
    let c = load path in
    Format.printf "%a@." Circuit.stats_pp c;
    let analyses = Feedback.analyze c in
    let fb = List.filter (fun a -> a.Feedback.in_cycle) analyses in
    let self = List.filter (fun a -> a.Feedback.self_feedback) analyses in
    let unate = List.filter (fun a -> a.Feedback.self_feedback && a.Feedback.positive_unate) analyses in
    Format.printf "latches on cycles: %d, self-feedback: %d, positive-unate: %d@."
      (List.length fb) (List.length self) (List.length unate);
    let enabled =
      List.length
        (List.filter (fun l -> snd (Circuit.latch_info c l) <> None) (Circuit.latches c))
    in
    Format.printf "load-enabled latches: %d@." enabled
  in
  let term = Term.(const run $ circuit_arg ~pos:0 ~doc:"Input netlist (or @suite-name).") in
  Cmd.v (Cmd.info "stats" ~doc:"Print size, timing and feedback statistics.") term

(* ---- expose ---- *)

let expose_cmd =
  let run path functional =
    let c = load path in
    let plan = if functional then Feedback.plan_functional c else Feedback.plan_structural c in
    Format.printf "exposed %d of %d latches:@." (List.length plan.Feedback.exposed)
      (Circuit.latch_count c);
    List.iter (fun l -> Format.printf "  %s@." (Circuit.signal_name c l)) plan.Feedback.exposed;
    if plan.Feedback.converted <> [] then begin
      Format.printf "convertible to load-enabled (positive unate, Lemma 6.1):@.";
      List.iter
        (fun l -> Format.printf "  %s@." (Circuit.signal_name c l))
        plan.Feedback.converted
    end
  in
  let functional =
    Arg.(value & flag & info [ "functional" ] ~doc:"Use the unateness-aware analysis.")
  in
  let term = Term.(const run $ circuit_arg ~pos:0 ~doc:"Input netlist." $ functional) in
  Cmd.v
    (Cmd.info "expose" ~doc:"Compute the latch exposure plan (minimum feedback vertex set).")
    term

(* ---- synth ---- *)

let synth_cmd =
  let run path out =
    let c = load path in
    let o = Synth_script.delay_script c in
    Format.printf "before: %a@.after:  %a@." Circuit.stats_pp c Circuit.stats_pp o;
    Option.iter (fun p -> save p o) out
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write result.")
  in
  let term = Term.(const run $ circuit_arg ~pos:0 ~doc:"Input netlist." $ out) in
  Cmd.v (Cmd.info "synth" ~doc:"Run the delay-oriented synthesis script (Fig. 17).") term

(* ---- retime ---- *)

let retime_cmd =
  let run path out period min_area exposed =
    let c = load path in
    let pred cc s = List.mem (Circuit.signal_name cc s) exposed in
    let o, report =
      match (period, min_area) with
      | Some p, _ -> (
          match Retime.constrained_min_area ~exposed:(pred c) ~period:p c with
          | Ok r -> r
          | Error Retime.Infeasible_period ->
              Format.eprintf "error: %s@."
                (Seqprob.diagnosis_to_string
                   (Seqprob.Infeasible_period
                      { circuit = Circuit.name c; period = p }));
              exit 1)
      | None, true -> Retime.min_area ~exposed:(pred c) c
      | None, false -> Retime.min_period ~exposed:(pred c) c
    in
    Format.printf "period %d -> %d, latches %d -> %d@." report.Retime.period_before
      report.Retime.period_after report.Retime.latches_before report.Retime.latches_after;
    Option.iter (fun p -> save p o) out
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write result.")
  in
  let period =
    Arg.(
      value
      & opt (some int) None
      & info [ "period" ] ~docv:"N" ~doc:"Minimize latches under this clock period.")
  in
  let min_area =
    Arg.(value & flag & info [ "min-area" ] ~doc:"Minimize latches with no period bound.")
  in
  let term =
    Term.(
      const run $ circuit_arg ~pos:0 ~doc:"Input netlist." $ out $ period $ min_area
      $ exposed_arg)
  in
  Cmd.v (Cmd.info "retime" ~doc:"Retime (min-period by default).") term

(* ---- verify ---- *)

let verify_cmd =
  let run p1 p2 engine exposed no_rewrite guard jobs timeout sat_conflicts
      cache_dir trace verbose obs_stats =
    let finish = obs_setup ~trace ~verbose ~stats:obs_stats in
    let store = Option.map open_store cache_dir in
    let quit code =
      Option.iter Store.close store;
      finish ();
      exit code
    in
    let c1 = load p1 and c2 = load p2 in
    let limits = limits_of timeout sat_conflicts in
    let outcome =
      match
        Verify.check ~engine ~jobs ~limits ?store
          ~rewrite_events:(not no_rewrite) ~guard_events:guard ~exposed c1 c2
      with
      | Ok o -> o
      | Error d ->
          Format.eprintf "error: %s@." (Seqprob.diagnosis_to_string d);
          quit 1
    in
    let stats = outcome.Verify.stats in
    let method_ =
      match stats.Verify.method_ with
      | Verify.Cbf_method -> "CBF"
      | Verify.Edbf_method -> "EDBF"
    in
    (match outcome.Verify.verdict with
    | Verify.Equivalent -> Format.printf "EQUIVALENT@."
    | Verify.Inequivalent (Some cex) ->
        Format.printf "NOT EQUIVALENT@.counterexample:@.";
        List.iter
          (fun (v, b) ->
            Format.printf "  %s = %b@." (Seqprob.Var.to_string v) b)
          cex
    | Verify.Inequivalent None ->
        Format.printf "NOT EQUIVALENT (conservative EDBF check; may be a false negative)@."
    | Verify.Undecided reason -> Format.printf "UNDECIDED (%s)@." reason);
    Format.printf
      "method %s, depth %d, %d variables, %d events, %d unrolled AIG nodes, %d+%d unrolled gates, %.3fs@."
      method_ stats.Verify.depth stats.Verify.variables stats.Verify.events
      stats.Verify.unrolled_nodes
      (fst stats.Verify.unrolled_gates)
      (snd stats.Verify.unrolled_gates)
      stats.Verify.seconds;
    Format.printf "cec: %a@." Cec.stats_pp stats.Verify.cec;
    match outcome.Verify.verdict with
    | Verify.Equivalent ->
        Option.iter Store.close store;
        finish ()
    | Verify.Inequivalent _ -> quit 1
    | Verify.Undecided _ -> quit 2
  in
  let no_rewrite =
    Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Disable the rule-(5) event rewrite.")
  in
  let guard =
    Arg.(
      value & flag
      & info [ "guard-events" ]
          ~doc:"Apply the event-consistency refinement (fewer EDBF false negatives).")
  in
  let term =
    Term.(
      const run
      $ circuit_arg ~pos:0 ~doc:"First netlist."
      $ circuit_arg ~pos:1 ~doc:"Second netlist."
      $ engine_arg $ exposed_arg $ no_rewrite $ guard $ jobs_arg $ timeout_arg
      $ sat_conflicts_arg $ cache_dir_arg $ trace_arg $ verbose_arg
      $ obs_stats_arg)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check sequential equivalence through the combinational reduction.")
    term

(* ---- baseline ---- *)

let baseline_cmd =
  let run p1 p2 budget =
    let c1 = load p1 and c2 = load p2 in
    let v, stats = Sec_baseline.check ~node_limit:budget c1 c2 in
    (match v with
    | Sec_baseline.Equivalent -> Format.printf "EQUIVALENT (reset equivalence)@."
    | Sec_baseline.Inequivalent -> Format.printf "NOT EQUIVALENT (reset equivalence)@."
    | Sec_baseline.Resource_out why -> Format.printf "GAVE UP: %s@." why);
    Format.printf "image steps %d, peak BDD nodes %d, recurrent product states %.0f, %.3fs@."
      stats.Sec_baseline.steps stats.Sec_baseline.peak_nodes
      stats.Sec_baseline.product_states stats.Sec_baseline.seconds
  in
  let budget =
    Arg.(
      value
      & opt int 2_000_000
      & info [ "node-budget" ] ~docv:"N" ~doc:"BDD node budget before giving up.")
  in
  let term =
    Term.(
      const run
      $ circuit_arg ~pos:0 ~doc:"First netlist."
      $ circuit_arg ~pos:1 ~doc:"Second netlist."
      $ budget)
  in
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Classical product-machine traversal (for comparison; may explode).")
    term

(* ---- redundancy ---- *)

let redundancy_cmd =
  let run path out =
    let c = load path in
    let o, report = Redundancy.run c in
    Format.printf "removed %d redundant connections (%d SAT calls), area %d -> %d@."
      report.Redundancy.removed report.Redundancy.sat_calls report.Redundancy.area_before
      report.Redundancy.area_after;
    Option.iter (fun p -> save p o) out
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write result.")
  in
  let term = Term.(const run $ circuit_arg ~pos:0 ~doc:"Input netlist." $ out) in
  Cmd.v (Cmd.info "redundancy" ~doc:"SAT-based redundancy removal.") term

(* ---- flow ---- *)

let flow_cmd =
  let run path jobs period timeout sat_conflicts cache_dir trace verbose
      obs_stats =
    let finish = obs_setup ~trace ~verbose ~stats:obs_stats in
    let store = Option.map open_store cache_dir in
    let c = load path in
    let limits = limits_of timeout sat_conflicts in
    match Flow.run ~jobs ~limits ?store ?period c with
    | Error d ->
        Format.eprintf "error: %s@." (Seqprob.diagnosis_to_string d);
        Option.iter Store.close store;
        finish ();
        exit 1
    | Ok row ->
        Format.printf
          "%s: A(l=%d d=%d) exposed=%d(%.0f%%) C(l=%d a=%d d=%d) D(a=%d d=%d) E(l=%d) F(l=%d d=%d) verify=%s %.2fs@."
          row.Flow.name row.Flow.a.Flow.latches row.Flow.a.Flow.delay row.Flow.exposed
          row.Flow.exposed_percent row.Flow.c.Flow.latches row.Flow.c.Flow.area
          row.Flow.c.Flow.delay row.Flow.d.Flow.area row.Flow.d.Flow.delay
          row.Flow.e.Flow.latches row.Flow.f.Flow.latches row.Flow.f.Flow.delay
          (match row.Flow.verify_verdict with
          | Verify.Equivalent -> "EQ"
          | Verify.Inequivalent _ -> "NEQ"
          | Verify.Undecided _ -> "UNDEC")
          row.Flow.verify_seconds;
        Option.iter Store.close store;
        finish ()
  in
  let period =
    Arg.(
      value
      & opt (some int) None
      & info [ "period" ] ~docv:"N"
          ~doc:
            "Clock-period target for the area-constrained retimings E and G \
             (default: the delay of the combinationally synthesized D).  A \
             period below the minimum feasible one is an error.")
  in
  let term =
    Term.(
      const run $ circuit_arg ~pos:0 ~doc:"Input netlist." $ jobs_arg $ period
      $ timeout_arg $ sat_conflicts_arg $ cache_dir_arg $ trace_arg
      $ verbose_arg $ obs_stats_arg)
  in
  Cmd.v (Cmd.info "flow" ~doc:"Run the full Fig. 19 experimental flow.") term

(* ---- cache ---- *)

let cache_cmd =
  let dir_arg =
    Arg.(
      value
      & pos 0 string Store.default_dir
      & info [] ~docv:"DIR"
          ~doc:"Verdict-store directory (as passed to the verify and flow \
                commands' $(b,--cache-dir)).")
  in
  let with_store f dir =
    let st = open_store dir in
    Fun.protect ~finally:(fun () -> Store.close st) (fun () -> f st)
  in
  let print dir st = Format.printf "%s: %a@." dir Store.pp_info (Store.info st) in
  let stats_c =
    let run dir = with_store (print dir) dir in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Print verdict-store statistics (entries, size, quarantine).")
      Term.(const run $ dir_arg)
  in
  let compact_c =
    let run dir =
      with_store
        (fun st ->
          Store.compact st;
          print dir st)
        dir
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Merge records appended by other processes, evict \
            least-recently-hit entries over capacity and atomically rewrite \
            the log.")
      Term.(const run $ dir_arg)
  in
  let clear_c =
    let run dir =
      with_store
        (fun st ->
          Store.clear st;
          print dir st)
        dir
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Drop every stored verdict.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Manage a persistent verdict store (see verify --cache-dir).")
    [ stats_c; compact_c; clear_c ]

(* ---- generate ---- *)

let generate_cmd =
  let run name out =
    let c =
      match Workloads.lookup name with
      | Ok c -> c
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 1
    in
    match out with
    | Some p -> save p c
    | None -> print_string (Netlist_io.to_string c)
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Suite circuit name.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write netlist.")
  in
  let term = Term.(const run $ name_arg $ out) in
  Cmd.v (Cmd.info "generate" ~doc:"Emit a benchmark-suite circuit as a netlist.") term

(* ---- hier ---- *)

let hier_cmd =
  let run name list_only flat engine jobs timeout sat_conflicts cache_dir trace
      verbose obs_stats =
    let suite = Workloads.hier_suite () in
    if list_only then begin
      List.iter
        (fun (n, (dl : Hier.design), (dr : Hier.design), expected) ->
          Format.printf "%-10s %s vs %s  (%d modules, expected %s)@." n
            dl.Hier.design_name dr.Hier.design_name
            (List.length dl.Hier.modules)
            (match expected with
            | `Eq -> "EQ"
            | `Neq m -> Printf.sprintf "NEQ in %s" m))
        suite;
      exit 0
    end;
    let name =
      match name with
      | Some n -> n
      | None ->
          Format.eprintf "error: a PAIR name is required (or use --list)@.";
          exit 1
    in
    let dl, dr =
      match List.find_opt (fun (n, _, _, _) -> n = name) suite with
      | Some (_, dl, dr, _) -> (dl, dr)
      | None ->
          Format.eprintf "error: unknown hier pair %S (have: %s)@." name
            (String.concat ", " (List.map (fun (n, _, _, _) -> n) suite));
          exit 1
    in
    let finish = obs_setup ~trace ~verbose ~stats:obs_stats in
    let store = Option.map open_store cache_dir in
    let quit code =
      Option.iter Store.close store;
      finish ();
      exit code
    in
    let limits = limits_of timeout sat_conflicts in
    if flat then begin
      (* monolithic reference: flatten both designs and run one Verify.check *)
      let c1 = Hier.flatten dl and c2 = Hier.flatten dr in
      let exposed =
        List.map (Circuit.signal_name c1)
          (Feedback.plan_structural c1).Feedback.exposed
      in
      match Verify.check ~engine ~jobs ~limits ?store ~exposed c1 c2 with
      | Error d ->
          Format.eprintf "error: %s@." (Seqprob.diagnosis_to_string d);
          quit 1
      | Ok o -> (
          (match o.Verify.verdict with
          | Verify.Equivalent -> Format.printf "EQUIVALENT (flat)@."
          | Verify.Inequivalent _ -> Format.printf "NOT EQUIVALENT (flat)@."
          | Verify.Undecided reason ->
              Format.printf "UNDECIDED (flat: %s)@." reason);
          Format.printf "%.3fs@." o.Verify.stats.Verify.seconds;
          match o.Verify.verdict with
          | Verify.Equivalent -> quit 0
          | Verify.Inequivalent _ -> quit 1
          | Verify.Undecided _ -> quit 2)
    end
    else begin
      let r = Hier.check ~engine ~jobs ~limits ?store dl dr in
      Format.printf "%-12s %-9s %-6s %-8s %s@." "MODULE" "MODE" "SRC"
        "VERDICT" "SECONDS";
      List.iter
        (fun (m : Hier.module_report) ->
          Format.printf "%-12s %-9s %-6s %-8s %.3f@." m.Hier.rm_module
            (match m.Hier.rm_mode with
            | Hier.Leaf -> "leaf"
            | Hier.Blackbox -> "blackbox"
            | Hier.Flat -> "flat")
            (match m.Hier.rm_source with
            | Hier.Checked -> "check"
            | Hier.Store_hit -> "store")
            (match m.Hier.rm_verdict with
            | Hier.M_equivalent -> "EQ"
            | Hier.M_inequivalent -> "NEQ"
            | Hier.M_undecided _ -> "UNDEC")
            m.Hier.rm_seconds)
        r.Hier.modules;
      Format.printf
        "%d store hits, %d checked, %d flat fallbacks, %.3fs@."
        r.Hier.store_hits r.Hier.checked r.Hier.flat_fallbacks r.Hier.seconds;
      match r.Hier.verdict with
      | Hier.Equivalent ->
          Format.printf "EQUIVALENT@.";
          quit 0
      | Hier.Inequivalent { offending; cex } ->
          Format.printf "NOT EQUIVALENT: module %s@." offending;
          (match cex with
          | Some cex ->
              Format.printf "counterexample:@.";
              List.iter
                (fun (v, b) ->
                  Format.printf "  %s = %b@." (Seqprob.Var.to_string v) b)
                cex
          | None -> ());
          quit 1
      | Hier.Undecided { module_; reason } ->
          Format.printf "UNDECIDED at module %s (%s)@." module_ reason;
          quit 2
    end
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PAIR"
          ~doc:"Hierarchical suite pair name (see $(b,--list)).")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the hierarchical suite pairs and exit.")
  in
  let flat_arg =
    Arg.(
      value & flag
      & info [ "flat" ]
          ~doc:
            "Flatten both designs and run one monolithic check instead of \
             the compositional planner (reference verdict / timing).")
  in
  let term =
    Term.(
      const run $ name_arg $ list_arg $ flat_arg $ engine_arg $ jobs_arg
      $ timeout_arg $ sat_conflicts_arg $ cache_dir_arg $ trace_arg
      $ verbose_arg $ obs_stats_arg)
  in
  Cmd.v
    (Cmd.info "hier"
       ~doc:
         "Compositional sequential equivalence on a hierarchical design \
          pair: leaves first, parents with verified submodules black-boxed, \
          per-module verdicts reused through the store (--cache-dir).")
    term

(* ---- serve ---- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (created by serve, dialed by client).")

let serve_cmd =
  let run socket executors jobs max_pending timeout sat_conflicts cache_dir
      engine metrics_addr trace_sample slow_ms =
    let cfg =
      {
        Server.socket_path = socket;
        executors;
        pool_jobs = jobs;
        max_pending;
        limits = limits_of timeout sat_conflicts;
        engine;
        cache_dir;
        metrics_addr;
        trace_sample;
        slow_ms = (if slow_ms < 0. then infinity else slow_ms);
      }
    in
    let t = Server.create cfg in
    (* graceful drain: finish everything admitted, flush the store, exit 0 *)
    let on_signal _ = Server.request_stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Format.eprintf
      "seqver serve: listening on %s (%d executors, pool of %d jobs, %d \
       pending max)@."
      socket executors jobs max_pending;
    (match Server.metrics_port t with
    | Some p -> Format.eprintf "seqver serve: metrics on port %d@." p
    | None -> ());
    Server.run t;
    Format.eprintf "seqver serve: drained@."
  in
  let executors =
    Arg.(
      value & opt int 2
      & info [ "executors" ] ~docv:"N"
          ~doc:"Concurrent checks (worker domains draining the queue).")
  in
  let max_pending =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission bound: requests queued beyond this are shed \
             immediately with verdict UNDECIDED, reason \"busy\".")
  in
  let metrics_addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"ADDR"
          ~doc:
            "Serve HTTP GET /metrics (Prometheus text exposition) on this \
             TCP address (host:port, :port or port; port 0 picks one).")
  in
  let trace_sample =
    Arg.(
      value & opt int 0
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Capture every Nth check's span tree into the trace ring \
             (op trace); 0 disables periodic sampling.")
  in
  let slow_ms =
    Arg.(
      value & opt float 500.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Checks at least this slow always enter the trace ring and the \
             stats slow-request log; negative disables the slow path.")
  in
  let term =
    Term.(
      const run $ socket_arg $ executors $ jobs_arg $ max_pending $ timeout_arg
      $ sat_conflicts_arg $ cache_dir_arg $ engine_arg $ metrics_addr
      $ trace_sample $ slow_ms)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived verification server: concurrent checks over a \
          line-delimited JSON protocol, one shared domain pool and verdict \
          cache, SIGTERM-drained.")
    term

(* ---- client ---- *)

let client_cmd =
  let retries_arg =
    Arg.(
      value & opt int 50
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Connection retries at 100 ms intervals (lets scripts dial a \
             daemon that is still starting).")
  in
  let with_client socket retries f =
    let c =
      try Server.Client.connect ~retries socket
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "error: cannot connect to %s: %s@." socket
          (Unix.error_message e);
        exit 1
    in
    Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f c)
  in
  let roundtrip c req =
    match Server.Client.request c req with
    | r -> r
    | exception End_of_file ->
        Format.eprintf "error: server hung up@.";
        exit 1
  in
  (* "@name" goes over the wire as a suite reference; a file is loaded and
     sent inline in Netlist_io form (normalizing .blif on the way) *)
  let wire_circuit path =
    if String.length path > 0 && path.[0] = '@' then path
    else Netlist_io.to_string (load path)
  in
  let ping_c =
    let run socket retries =
      with_client socket retries @@ fun c ->
      let r = roundtrip c (Sjson.Obj [ ("op", Sjson.String "ping") ]) in
      print_endline (Sjson.to_string r);
      if Option.bind (Sjson.member "ok" r) Sjson.get_bool <> Some true then
        exit 1
    in
    Cmd.v
      (Cmd.info "ping" ~doc:"Round-trip a ping; exit 0 when the server answers.")
      Term.(const run $ socket_arg $ retries_arg)
  in
  let stats_c =
    let run socket retries =
      with_client socket retries @@ fun c ->
      let r = roundtrip c (Sjson.Obj [ ("op", Sjson.String "stats") ]) in
      print_endline (Sjson.to_string r);
      if Option.bind (Sjson.member "ok" r) Sjson.get_bool <> Some true then
        exit 1
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Scrape live server/Obs/store counters as one JSON line.")
      Term.(const run $ socket_arg $ retries_arg)
  in
  let metrics_c =
    let run socket retries =
      with_client socket retries @@ fun c ->
      let r = roundtrip c (Sjson.Obj [ ("op", Sjson.String "metrics") ]) in
      match
        ( Option.bind (Sjson.member "ok" r) Sjson.get_bool,
          Option.bind (Sjson.member "metrics" r) Sjson.get_string )
      with
      | Some true, Some text -> print_string text
      | _ ->
          print_endline (Sjson.to_string r);
          exit 1
    in
    Cmd.v
      (Cmd.info "metrics"
         ~doc:
           "Print the server's Prometheus text exposition (the same payload \
            GET /metrics serves) — for socket-only deployments.")
      Term.(const run $ socket_arg $ retries_arg)
  in
  let trace_c =
    let run socket retries =
      with_client socket retries @@ fun c ->
      let r = roundtrip c (Sjson.Obj [ ("op", Sjson.String "trace") ]) in
      print_endline (Sjson.to_string r);
      if Option.bind (Sjson.member "ok" r) Sjson.get_bool <> Some true then
        exit 1
    in
    Cmd.v
      (Cmd.info "trace"
         ~doc:
           "Dump the server's trace ring (sampled and slow requests, with \
            span trees) as one JSON line.")
      Term.(const run $ socket_arg $ retries_arg)
  in
  let check_c =
    let run socket retries p1 p2 exposed no_expose engine timeout sat_conflicts
        jobs =
      let fields =
        [
          ("id", Sjson.Int (Unix.getpid ()));
          ("op", Sjson.String "check");
          ("left", Sjson.String (wire_circuit p1));
          ("right", Sjson.String (wire_circuit p2));
        ]
        @ (match (exposed, no_expose) with
          | [], false -> [ ("exposed", Sjson.String "auto") ]
          | [], true -> [ ("exposed", Sjson.List []) ]
          | names, _ ->
              [
                ( "exposed",
                  Sjson.List (List.map (fun n -> Sjson.String n) names) );
              ])
        @ [
            ( "engine",
              Sjson.String
                (match engine with
                | Cec.Sweep_engine -> "sweep"
                | Cec.Sat_engine -> "sat"
                | Cec.Bdd_engine -> "bdd") );
          ]
        @ (match timeout with
          | Some s -> [ ("timeout", Sjson.Float s) ]
          | None -> [])
        @ (match sat_conflicts with
          | Some n -> [ ("sat_conflicts", Sjson.Int n) ]
          | None -> [])
        @ match jobs with Some n -> [ ("jobs", Sjson.Int n) ] | None -> []
      in
      with_client socket retries @@ fun c ->
      let r = roundtrip c (Sjson.Obj fields) in
      print_endline (Sjson.to_string r);
      (* same exit codes as the one-shot verify command *)
      match
        ( Option.bind (Sjson.member "ok" r) Sjson.get_bool,
          Option.bind (Sjson.member "verdict" r) Sjson.get_string )
      with
      | Some true, Some "equivalent" -> ()
      | Some true, Some "inequivalent" -> exit 1
      | Some true, Some "undecided" -> exit 2
      | _ -> exit 1
    in
    let no_expose =
      Arg.(
        value & flag
        & info [ "no-expose" ]
            ~doc:
              "Send an empty exposure list instead of the server's \
               structural-plan default.")
    in
    let req_jobs =
      Arg.(
        value
        & opt (some int) None
        & info [ "j"; "jobs" ] ~docv:"N"
            ~doc:"Narrow this request's pool parallelism.")
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Submit one equivalence check; prints the response JSON and exits \
            0/1/2 for EQUIVALENT/NOT EQUIVALENT/UNDECIDED.")
      Term.(
        const run $ socket_arg $ retries_arg
        $ circuit_arg ~pos:0 ~doc:"First netlist (or @suite-name)."
        $ circuit_arg ~pos:1 ~doc:"Second netlist (or @suite-name)."
        $ exposed_arg $ no_expose $ engine_arg $ timeout_arg
        $ sat_conflicts_arg $ req_jobs)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running seqver serve daemon.")
    [ check_c; stats_c; metrics_c; trace_c; ping_c ]

let () =
  let doc = "sequential verification by combinational reduction (DATE'99 reproduction)" in
  let info = Cmd.info "seqver" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ stats_cmd; expose_cmd; synth_cmd; retime_cmd; verify_cmd; baseline_cmd; redundancy_cmd; flow_cmd; cache_cmd; generate_cmd; hier_cmd; serve_cmd; client_cmd ]))
